// Fault-injection matrix and checkpoint/resume tests for the campaign
// executor: every injection kind at every worker count with pooling on and
// off, seeded-selection determinism, and the kill-then-resume round trip
// through the JSONL task journal.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/executor.hpp"
#include "campaign/faultsim.hpp"
#include "campaign/journal.hpp"
#include "campaign/planner.hpp"
#include "machine/config.hpp"
#include "npb/bt/bt_model.hpp"
#include "npb/sp/sp_model.hpp"

namespace kcoup::campaign {
namespace {

// --- Fixtures ----------------------------------------------------------------

/// Deterministic callable-kernel application; kernel k costs (k+1) * scale.
struct SyntheticApp {
  std::vector<std::unique_ptr<coupling::CallableKernel>> kernels;
  coupling::LoopApplication app;

  explicit SyntheticApp(std::size_t loop_size, double scale) {
    app.name = "synthetic";
    app.iterations = 3;
    for (std::size_t k = 0; k < loop_size; ++k) {
      kernels.push_back(std::make_unique<coupling::CallableKernel>(
          "k" + std::to_string(k),
          [k, scale] { return static_cast<double>(k + 1) * scale; }));
      app.loop.push_back(kernels.back().get());
    }
  }
};

/// Counts live instances so the matrix can prove no handle leaks under any
/// fault kind.
struct CountedOwner {
  inline static std::atomic<int> live{0};
  SyntheticApp inner;
  explicit CountedOwner(std::size_t loop_size, double scale)
      : inner(loop_size, scale) {
    ++live;
  }
  ~CountedOwner() { --live; }
  [[nodiscard]] const coupling::LoopApplication& app() const {
    return inner.app;
  }
};

CampaignStudy counted_cell(const std::string& name, int ranks,
                           std::size_t loop_size, double scale) {
  CampaignStudy cell;
  cell.application = name;
  cell.config = "C";
  cell.ranks = ranks;
  cell.factory = [loop_size, scale] {
    return own_app(std::make_unique<CountedOwner>(loop_size, scale));
  };
  return cell;
}

/// Two synthetic cells, chains {2, 3}: 2 x (1 actual + 4 isolated + 8
/// chains) = 26 planned tasks, cheap enough for a big matrix.
CampaignSpec synthetic_spec() {
  CampaignSpec spec;
  spec.chain_lengths = {2, 3};
  spec.studies.push_back(counted_cell("A", 1, 4, 1.0));
  spec.studies.push_back(counted_cell("B", 4, 4, 2.0));
  return spec;
}

/// One modeled-NPB cell (BT class S, 4 ranks) for end-to-end realism.
CampaignSpec npb_spec() {
  const machine::MachineConfig cfg = machine::ibm_sp_p2sc();
  CampaignSpec spec;
  spec.chain_lengths = {2};
  CampaignStudy bt;
  bt.application = "BT";
  bt.config = "S";
  bt.ranks = 4;
  bt.factory = [cfg] {
    return own_app(npb::bt::make_modeled_bt(npb::ProblemClass::kS, 4, cfg));
  };
  spec.studies.push_back(std::move(bt));
  return spec;
}

void expect_identical(const coupling::StudyResult& a,
                      const coupling::StudyResult& b) {
  EXPECT_EQ(a.actual_s, b.actual_s);
  EXPECT_EQ(a.isolated_means, b.isolated_means);
  EXPECT_EQ(a.prologue_s, b.prologue_s);
  EXPECT_EQ(a.epilogue_s, b.epilogue_s);
  EXPECT_EQ(a.summation_s, b.summation_s);
  ASSERT_EQ(a.by_length.size(), b.by_length.size());
  for (std::size_t i = 0; i < a.by_length.size(); ++i) {
    ASSERT_EQ(a.by_length[i].chains.size(), b.by_length[i].chains.size());
    for (std::size_t c = 0; c < a.by_length[i].chains.size(); ++c) {
      EXPECT_EQ(a.by_length[i].chains[c].chain_time,
                b.by_length[i].chains[c].chain_time);
      EXPECT_EQ(a.by_length[i].chains[c].isolated_sum,
                b.by_length[i].chains[c].isolated_sum);
    }
  }
}

/// A few explicit injection targets spread across both cells.
std::vector<TaskKey> injection_targets(const CampaignPlan& plan) {
  std::vector<TaskKey> targets;
  for (std::size_t i = 0; i < plan.tasks.size(); i += 7) {
    targets.push_back(plan.tasks[i].key);
  }
  return targets;
}

/// Path helper for journal files; gtest's TempDir is writable and per-run.
std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

// --- The fault matrix --------------------------------------------------------

TEST(CampaignFaultMatrixTest, EveryKindWorkersPoolingCombination) {
  CampaignSpec base = synthetic_spec();
  const CampaignPlan plan = plan_campaign(base);
  const std::vector<TaskKey> targets = injection_targets(plan);
  ASSERT_FALSE(targets.empty());
  const std::set<TaskKey> target_set(targets.begin(), targets.end());

  const CampaignResult clean = run_campaign(base, 1);
  ASSERT_TRUE(clean.complete());

  for (const FaultKind kind :
       {FaultKind::kConstructThrow, FaultKind::kMeasureThrow,
        FaultKind::kNoiseSpike}) {
    CampaignSpec spec = base;
    for (const TaskKey& key : targets) {
      spec.faults.injections.push_back(FaultInjection{key, kind});
    }
    if (kind == FaultKind::kNoiseSpike) {
      // A noise spike alone is not fatal: it widens the spread, trips the
      // retry threshold, and the merged retries succeed.
      spec.retry.max_relative_stddev = 0.05;
      spec.retry.max_attempts = 3;
    }
    for (const std::size_t workers : {1u, 2u, 8u}) {
      for (const bool pooled : {true, false}) {
        SCOPED_TRACE(std::string(to_string(kind)) +
                     " workers=" + std::to_string(workers) +
                     " pooled=" + std::to_string(pooled));
        spec.pool_handles = pooled;
        const CampaignResult result = run_campaign(spec, workers);
        EXPECT_EQ(CountedOwner::live.load(), 0) << "leaked handles";

        if (kind == FaultKind::kNoiseSpike) {
          EXPECT_TRUE(result.complete());
          EXPECT_EQ(result.metrics.tasks_failed, 0u);
          EXPECT_GT(result.metrics.tasks_retried, 0u);
          continue;
        }

        // Throw kinds: exactly the targeted tasks fail, nothing else.
        EXPECT_FALSE(result.complete());
        ASSERT_EQ(result.failures.size(), targets.size());
        std::set<TaskKey> failed;
        for (const TaskFailure& f : result.failures) {
          failed.insert(f.key);
          EXPECT_EQ(f.attempts, spec.retry.max_attempts) << to_string(f.key);
          EXPECT_NE(f.what.find(to_string(kind)), std::string::npos)
              << f.what;
        }
        EXPECT_EQ(failed, target_set);
        EXPECT_EQ(result.metrics.tasks_failed, targets.size());

        // Unfaulted isolated means stay bit-identical to the clean run.
        for (std::size_t s = 0; s < clean.studies.size(); ++s) {
          const CampaignStudy& cell = base.studies[s];
          for (std::size_t k = 0;
               k < clean.studies[s].isolated_means.size(); ++k) {
            const TaskKey key{cell.application, cell.config, cell.ranks,
                              TaskKind::kChain, k, 1};
            if (target_set.count(key)) {
              EXPECT_TRUE(std::isnan(result.studies[s].isolated_means[k]));
            } else {
              EXPECT_EQ(result.studies[s].isolated_means[k],
                        clean.studies[s].isolated_means[k]);
            }
          }
        }
      }
    }
  }
}

TEST(CampaignFaultMatrixTest, SeededSelectionIsIdenticalAcrossExecutions) {
  CampaignSpec spec = synthetic_spec();
  spec.faults.seed = 0xc0ffee;
  spec.faults.measure_throw_rate = 0.3;
  spec.faults.construct_throw_rate = 0.15;

  const CampaignPlan plan = plan_campaign(spec);
  const FaultSimulator sim(spec.faults);
  const std::vector<TaskKey> expected = sim.faulted_keys(plan.tasks);
  ASSERT_FALSE(expected.empty()) << "seed produced no faults; pick another";
  ASSERT_LT(expected.size(), plan.tasks.size())
      << "seed faulted everything; pick another";

  for (const std::size_t workers : {1u, 2u, 8u}) {
    for (const bool pooled : {true, false}) {
      SCOPED_TRACE("workers=" + std::to_string(workers) +
                   " pooled=" + std::to_string(pooled));
      spec.pool_handles = pooled;
      const CampaignResult result = run_campaign(spec, workers);
      std::vector<TaskKey> failed;
      for (const TaskFailure& f : result.failures) failed.push_back(f.key);
      EXPECT_EQ(failed, expected);
    }
  }
}

TEST(CampaignFaultMatrixTest, DifferentSeedsPickDifferentTasks) {
  CampaignSpec spec = synthetic_spec();
  spec.faults.measure_throw_rate = 0.4;
  const CampaignPlan plan = plan_campaign(spec);

  std::set<std::vector<TaskKey>> selections;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    FaultPlan fp = spec.faults;
    fp.seed = seed;
    selections.insert(FaultSimulator(fp).faulted_keys(plan.tasks));
  }
  EXPECT_GT(selections.size(), 1u)
      << "every seed selected the same fault set";
}

TEST(CampaignFaultMatrixTest, NpbCampaignSurvivesInjectedFaults) {
  CampaignSpec spec = npb_spec();
  spec.retry.max_attempts = 2;
  spec.faults.seed = 7;
  spec.faults.measure_throw_rate = 0.25;

  const CampaignPlan plan = plan_campaign(spec);
  const std::size_t doomed =
      FaultSimulator(spec.faults).faulted_keys(plan.tasks).size();
  ASSERT_GT(doomed, 0u);

  const CampaignResult result = run_campaign(spec, 4);
  EXPECT_EQ(result.failures.size(), doomed);
  EXPECT_EQ(result.metrics.tasks_failed, doomed);
  // Partial results propagate NaN without crashing the analysis layer.
  ASSERT_EQ(result.studies.size(), 1u);
  EXPECT_EQ(result.missing[0].empty(), false);
}

// --- Journal round trip ------------------------------------------------------

TEST(JournalTest, LineRoundTripsBitExactDoubles) {
  const JournalEntry entry{
      TaskKey{"BT", "S", 4, TaskKind::kChain, 2, 3},
      0.1234567890123456789, 2};
  const auto parsed = parse_journal_line(journal_line(entry));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->key, entry.key);
  EXPECT_EQ(parsed->value, entry.value);  // exact, not approximate
  EXPECT_EQ(parsed->attempts, entry.attempts);
}

TEST(JournalTest, LoaderSkipsTruncatedTail) {
  const JournalEntry good{TaskKey{"A", "C", 1, TaskKind::kActual, 0, 0},
                          3.5, 1};
  const std::string full = journal_line(good);
  std::istringstream in(full + "\n" + full.substr(0, full.size() / 2));
  const auto loaded = load_journal(in);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.at(good.key), 3.5);
}

TEST(JournalTest, LoaderToleratesGarbageAndBlankLines) {
  const JournalEntry good{TaskKey{"A", "C", 1, TaskKind::kPrologue, 1, 0},
                          0.25, 1};
  std::istringstream in("\nnot json\n{\"half\": true\n" +
                        journal_line(good) + "\n{}\n");
  const auto loaded = load_journal(in);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.at(good.key), 0.25);
}

TEST(JournalTest, DuplicateKeysKeepTheLastValue) {
  const TaskKey key{"A", "C", 1, TaskKind::kChain, 0, 2};
  std::istringstream in(journal_line(JournalEntry{key, 1.0, 1}) + "\n" +
                        journal_line(JournalEntry{key, 2.0, 1}) + "\n");
  const auto loaded = load_journal(in);
  EXPECT_EQ(loaded.at(key), 2.0);
}

// --- Kill / resume -----------------------------------------------------------

TEST(CampaignResumeTest, KilledCampaignResumesWithoutReexecution) {
  const std::string journal = temp_path("kcoup_resume_test.jsonl");
  std::remove(journal.c_str());

  CampaignSpec spec = synthetic_spec();
  const CampaignPlan plan = plan_campaign(spec);
  const std::size_t total = plan.tasks.size();
  const std::size_t survive = total / 2;
  ASSERT_GT(survive, 0u);

  // Uninterrupted reference, no journal involved.
  const CampaignResult reference = run_campaign(spec, 1);
  ASSERT_TRUE(reference.complete());

  // Run 1: crash mid-sweep after `survive` tasks.  Serial, so exactly that
  // many tasks completed and were journaled.
  spec.journal_path = journal;
  spec.faults.abort_after = survive;
  EXPECT_THROW((void)run_campaign(spec, 1), CampaignAborted);
  EXPECT_EQ(CountedOwner::live.load(), 0) << "crash leaked handles";
  {
    std::ifstream in(journal);
    ASSERT_TRUE(in.good());
    EXPECT_EQ(load_journal(in).size(), survive);
  }

  // Run 2: same spec, crash disabled — resumes from the journal.
  spec.faults.abort_after = 0;
  const CampaignResult resumed = run_campaign(spec, 1);
  EXPECT_TRUE(resumed.complete());
  EXPECT_EQ(resumed.metrics.journal_hits, survive);
  EXPECT_EQ(resumed.metrics.tasks_executed, total - survive);

  // The resumed campaign's results are bit-identical to never crashing.
  ASSERT_EQ(resumed.studies.size(), reference.studies.size());
  for (std::size_t s = 0; s < reference.studies.size(); ++s) {
    SCOPED_TRACE("study=" + std::to_string(s));
    expect_identical(resumed.studies[s], reference.studies[s]);
  }

  // Run 3: everything is journaled now; nothing executes.
  const CampaignResult third = run_campaign(spec, 1);
  EXPECT_EQ(third.metrics.journal_hits, total);
  EXPECT_EQ(third.metrics.tasks_executed, 0u);
  for (std::size_t s = 0; s < reference.studies.size(); ++s) {
    SCOPED_TRACE("study=" + std::to_string(s));
    expect_identical(third.studies[s], reference.studies[s]);
  }
  std::remove(journal.c_str());
}

TEST(CampaignResumeTest, ConcurrentCrashJournalsOnlyCompletedTasks) {
  const std::string journal = temp_path("kcoup_resume_mt_test.jsonl");
  std::remove(journal.c_str());

  CampaignSpec spec = synthetic_spec();
  const CampaignPlan plan = plan_campaign(spec);
  const std::size_t total = plan.tasks.size();

  const CampaignResult reference = run_campaign(spec, 1);

  spec.journal_path = journal;
  spec.faults.abort_after = total / 3;
  EXPECT_THROW((void)run_campaign(spec, 4), CampaignAborted);
  EXPECT_EQ(CountedOwner::live.load(), 0);

  // Workers that had started before the abort still finish their task, so
  // the journal holds at least abort_after entries and every line parses.
  std::size_t journaled = 0;
  {
    std::ifstream in(journal);
    ASSERT_TRUE(in.good());
    std::string line;
    while (std::getline(in, line)) {
      EXPECT_TRUE(parse_journal_line(line).has_value()) << line;
      ++journaled;
    }
  }
  EXPECT_GE(journaled, spec.faults.abort_after);
  EXPECT_LT(journaled, total);

  // Resume concurrently; the journaled tasks are not re-executed.
  spec.faults.abort_after = 0;
  const CampaignResult resumed = run_campaign(spec, 4);
  EXPECT_TRUE(resumed.complete());
  EXPECT_EQ(resumed.metrics.journal_hits, journaled);
  EXPECT_EQ(resumed.metrics.tasks_executed, total - journaled);
  for (std::size_t s = 0; s < reference.studies.size(); ++s) {
    SCOPED_TRACE("study=" + std::to_string(s));
    expect_identical(resumed.studies[s], reference.studies[s]);
  }
  std::remove(journal.c_str());
}

TEST(CampaignResumeTest, JournalWithNoFaultsIsBitIdenticalToPlainRun) {
  const std::string journal = temp_path("kcoup_journal_nofault_test.jsonl");
  std::remove(journal.c_str());

  CampaignSpec spec = synthetic_spec();
  const CampaignResult plain = run_campaign(spec, 2);

  spec.journal_path = journal;
  const CampaignResult journaled = run_campaign(spec, 2);
  ASSERT_EQ(plain.studies.size(), journaled.studies.size());
  for (std::size_t s = 0; s < plain.studies.size(); ++s) {
    SCOPED_TRACE("study=" + std::to_string(s));
    expect_identical(plain.studies[s], journaled.studies[s]);
  }
  std::remove(journal.c_str());
}

// --- Fault simulator unit checks ---------------------------------------------

TEST(FaultSimulatorTest, RateZeroSelectsNothingRateOneSelectsEverything) {
  const CampaignPlan plan = plan_campaign(synthetic_spec());
  FaultPlan none;
  none.seed = 42;
  EXPECT_TRUE(FaultSimulator(none).faulted_keys(plan.tasks).empty());

  FaultPlan all;
  all.seed = 42;
  all.measure_throw_rate = 1.0;
  EXPECT_EQ(FaultSimulator(all).faulted_keys(plan.tasks).size(),
            plan.tasks.size());
}

TEST(FaultSimulatorTest, KindsSelectIndependently) {
  // The same seed must not couple the three kinds: salt separation means a
  // task picked for construct faults is not automatically picked for
  // measure faults.
  const CampaignPlan plan = plan_campaign(synthetic_spec());
  FaultPlan fp;
  fp.seed = 99;
  fp.construct_throw_rate = 0.5;
  fp.measure_throw_rate = 0.5;
  const FaultSimulator sim(fp);
  bool differ = false;
  for (const MeasurementTask& t : plan.tasks) {
    if (sim.construct_throws(t.key) != sim.measure_throws(t.key)) {
      differ = true;
      break;
    }
  }
  EXPECT_TRUE(differ) << "construct and measure selections are identical";
}

TEST(FaultSimulatorTest, AbortFiresExactlyOnceAfterThreshold) {
  FaultPlan fp;
  fp.abort_after = 3;
  FaultSimulator sim(fp);
  EXPECT_NO_THROW(sim.maybe_abort());
  EXPECT_NO_THROW(sim.maybe_abort());
  EXPECT_NO_THROW(sim.maybe_abort());
  EXPECT_THROW(sim.maybe_abort(), CampaignAborted);
}

}  // namespace
}  // namespace kcoup::campaign
