// Unit and property tests for the block tridiagonal line solver
// (npb/common/blocktri.hpp), including the distributed split-equivalence
// property the BT y/z sweeps rely on.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "npb/common/blocktri.hpp"

namespace kcoup::npb {
namespace {

Block5 random_block(std::mt19937& rng, double scale) {
  std::uniform_real_distribution<double> dist(-scale, scale);
  Block5 m;
  for (auto& v : m) v = dist(rng);
  return m;
}

std::vector<BlockTriRow> random_system(int n, std::mt19937& rng) {
  std::vector<BlockTriRow> rows(static_cast<std::size_t>(n));
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  for (int m = 0; m < n; ++m) {
    BlockTriRow& r = rows[static_cast<std::size_t>(m)];
    if (m > 0) r.a = random_block(rng, 0.3);
    if (m + 1 < n) r.c = random_block(rng, 0.3);
    r.b = random_block(rng, 0.3);
    // Strong diagonal so every pivot block is well conditioned.
    for (int i = 0; i < 5; ++i) {
      r.b[static_cast<std::size_t>(i * 5 + i)] += 5.0;
    }
    for (auto& v : r.r) v = dist(rng);
  }
  return rows;
}

/// Reference: multiply the block-tridiagonal matrix by x.
std::vector<Vec5> apply_system(const std::vector<BlockTriRow>& rows,
                        const std::vector<Vec5>& x) {
  const int n = static_cast<int>(rows.size());
  std::vector<Vec5> b(rows.size(), kZeroVec);
  for (int m = 0; m < n; ++m) {
    const BlockTriRow& r = rows[static_cast<std::size_t>(m)];
    Vec5 s = matvec5(r.b, x[static_cast<std::size_t>(m)]);
    if (m > 0) {
      const Vec5 t = matvec5(r.a, x[static_cast<std::size_t>(m - 1)]);
      for (std::size_t c = 0; c < 5; ++c) s[c] += t[c];
    }
    if (m + 1 < n) {
      const Vec5 t = matvec5(r.c, x[static_cast<std::size_t>(m + 1)]);
      for (std::size_t c = 0; c < 5; ++c) s[c] += t[c];
    }
    b[static_cast<std::size_t>(m)] = s;
  }
  return b;
}

TEST(BlockTriTest, SingleRowIsDirectSolve) {
  std::mt19937 rng(3);
  auto rows = random_system(1, rng);
  std::vector<Vec5> x(1);
  std::vector<BlockTriState> scratch(1);
  ASSERT_TRUE(blocktri_solve_line(rows, x, scratch));
  const auto back = apply_system(rows, x);
  for (std::size_t c = 0; c < 5; ++c) {
    EXPECT_NEAR(back[0][c], rows[0].r[c], 1e-10);
  }
}

class BlockTriPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BlockTriPropertyTest, SolutionSatisfiesSystem) {
  const int n = GetParam();
  std::mt19937 rng(static_cast<unsigned>(500 + n));
  auto rows = random_system(n, rng);
  std::vector<Vec5> x(static_cast<std::size_t>(n));
  std::vector<BlockTriState> scratch(static_cast<std::size_t>(n));
  ASSERT_TRUE(blocktri_solve_line(rows, x, scratch));
  const auto back = apply_system(rows, x);
  for (int m = 0; m < n; ++m) {
    for (std::size_t c = 0; c < 5; ++c) {
      EXPECT_NEAR(back[static_cast<std::size_t>(m)][c],
                  rows[static_cast<std::size_t>(m)].r[c], 1e-8)
          << "n=" << n << " m=" << m << " c=" << c;
    }
  }
}

TEST_P(BlockTriPropertyTest, ChunkedEliminationMatchesWholeLine) {
  const int n = GetParam();
  if (n < 3) GTEST_SKIP();
  std::mt19937 rng(static_cast<unsigned>(900 + n));
  auto rows = random_system(n, rng);

  std::vector<Vec5> x_ref(static_cast<std::size_t>(n));
  {
    std::vector<BlockTriState> scratch(static_cast<std::size_t>(n));
    ASSERT_TRUE(blocktri_solve_line(rows, x_ref, scratch));
  }

  // Two chunks with the BlockTriState forward hand-off and the Vec5
  // backward hand-off, exactly as BtRank::y_solve performs them.
  const int c0 = n / 2;
  const int c1 = n - c0;
  std::vector<BlockTriState> states(static_cast<std::size_t>(n));
  BlockTriState last0, last1;
  ASSERT_TRUE(blocktri_forward(
      std::span<const BlockTriRow>(rows).first(static_cast<std::size_t>(c0)),
      nullptr, std::span(states).first(static_cast<std::size_t>(c0)), last0));
  ASSERT_TRUE(blocktri_forward(
      std::span<const BlockTriRow>(rows).subspan(
          static_cast<std::size_t>(c0), static_cast<std::size_t>(c1)),
      &last0,
      std::span(states).subspan(static_cast<std::size_t>(c0),
                                static_cast<std::size_t>(c1)),
      last1));

  std::vector<Vec5> x(static_cast<std::size_t>(n));
  const Vec5 x_mid = blocktri_backward(
      std::span<const BlockTriState>(states).subspan(
          static_cast<std::size_t>(c0), static_cast<std::size_t>(c1)),
      kZeroVec,
      std::span(x).subspan(static_cast<std::size_t>(c0),
                           static_cast<std::size_t>(c1)));
  (void)blocktri_backward(
      std::span<const BlockTriState>(states).first(
          static_cast<std::size_t>(c0)),
      x_mid, std::span(x).first(static_cast<std::size_t>(c0)));

  for (int m = 0; m < n; ++m) {
    for (std::size_t c = 0; c < 5; ++c) {
      EXPECT_NEAR(x[static_cast<std::size_t>(m)][c],
                  x_ref[static_cast<std::size_t>(m)][c], 1e-9)
          << "n=" << n << " m=" << m << " c=" << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(LineLengths, BlockTriPropertyTest,
                         ::testing::Values(2, 3, 4, 5, 8, 12, 16, 33));

}  // namespace
}  // namespace kcoup::npb
