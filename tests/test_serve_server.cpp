// Loopback tests for the TCP prediction server: wire round trips, batch
// queries, N concurrent clients, malformed/oversized-frame rejection,
// overload fast-reject, graceful drain, live hot-reload, and the stats op.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include "coupling/database.hpp"
#include "coupling/study.hpp"
#include "machine/config.hpp"
#include "npb/bt/bt_model.hpp"
#include "serve/client.hpp"
#include "serve/pack.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

#include "serve_format_env.hpp"

namespace kcoup {
namespace {

/// One BT class-S P=4 study (chains of 2) shared by every test in the
/// suite: measuring it once keeps the whole file fast, and its prediction
/// is the bit-identity reference for everything served.
class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cfg_ = new machine::MachineConfig(machine::ibm_sp_p2sc());
    const auto modeled =
        npb::bt::make_modeled_bt(npb::ProblemClass::kS, 4, *cfg_);
    coupling::StudyOptions options;
    options.chain_lengths = {2};
    study_ = new coupling::StudyResult(
        coupling::run_study(modeled->app(), options));
  }

  static void TearDownTestSuite() {
    delete study_;
    delete cfg_;
    study_ = nullptr;
    cfg_ = nullptr;
  }

  void SetUp() override {
    path_ = std::filesystem::path(::testing::TempDir()) /
            ("kcoup_server_db_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name() +
             ".csv");
    write_db(1.0);
    workload_ = std::make_unique<serve::NpbWorkload>(*cfg_);
    engine_ = std::make_unique<serve::QueryEngine>(workload_.get());
    source_ = std::make_unique<serve::SnapshotSource>(
        path_.string(), serve::CellFn{}, serve::SnapshotOptions{false});
    source_->load();
  }

  void TearDown() override {
    server_.reset();  // stop before the source/engine it points at
    source_.reset();
    std::filesystem::remove(path_);
  }

  /// Persist the study's chains with chain_time scaled by `scale` — scale 1
  /// is the real measurement; any other value simulates a refreshed
  /// database with different content for hot-reload tests.
  void write_db(double scale) {
    coupling::CouplingDatabase db;
    for (const auto& cl : study_->by_length) {
      for (coupling::ChainCoupling chain : cl.chains) {
        chain.chain_time *= scale;
        coupling::CouplingRecord r;
        r.key = {"BT", "S", 4, chain.length, chain.start};
        r.chain_time = chain.chain_time;
        r.isolated_sum = chain.isolated_sum;
        db.record(r);
      }
    }
    test::save_db_in_env_format(std::move(db), path_.string());
  }

  /// Rewrite the database at `path_` in an explicit format, regardless of
  /// KCOUP_SNAPSHOT_FORMAT — the cross-format hot-reload test swaps
  /// formats live under the same path.
  void write_db_as(double scale, bool packed) {
    coupling::CouplingDatabase db;
    for (const auto& cl : study_->by_length) {
      for (coupling::ChainCoupling chain : cl.chains) {
        chain.chain_time *= scale;
        coupling::CouplingRecord r;
        r.key = {"BT", "S", 4, chain.length, chain.start};
        r.chain_time = chain.chain_time;
        r.isolated_sum = chain.isolated_sum;
        db.record(r);
      }
    }
    if (packed) {
      serve::pack_snapshot_file(
          serve::PredictorSnapshot(std::move(db), 0, serve::CellFn{},
                                   serve::SnapshotOptions{false}),
          path_.string());
    } else {
      db.save_csv_file(path_.string());
    }
  }

  void start_server(serve::ServerConfig config = {}) {
    server_ = std::make_unique<serve::Server>(source_.get(), engine_.get(),
                                              config);
    server_->start();
  }

  serve::Client connect() {
    serve::Client client;
    client.connect("127.0.0.1", server_->port());
    return client;
  }

  static machine::MachineConfig* cfg_;
  static coupling::StudyResult* study_;

  std::filesystem::path path_;
  std::unique_ptr<serve::NpbWorkload> workload_;
  std::unique_ptr<serve::QueryEngine> engine_;
  std::unique_ptr<serve::SnapshotSource> source_;
  std::unique_ptr<serve::Server> server_;
};

machine::MachineConfig* ServerTest::cfg_ = nullptr;
coupling::StudyResult* ServerTest::study_ = nullptr;

TEST_F(ServerTest, BindsEphemeralPortAndAnswersPing) {
  start_server();
  EXPECT_GT(server_->port(), 0);
  EXPECT_TRUE(server_->running());
  serve::Client client = connect();
  EXPECT_TRUE(client.ping());
}

TEST_F(ServerTest, ServedPredictionIsBitIdenticalToRunStudy) {
  start_server();
  serve::Client client = connect();
  const auto p = client.predict({"BT", "S", 4, 2});
  ASSERT_TRUE(p.has_value());
  ASSERT_TRUE(p->ok) << p->error;
  // 17-significant-digit framing: the value that crossed the socket equals
  // the in-process study bit for bit.
  EXPECT_EQ(p->coupling_s, study_->by_length[0].prediction_s);
  EXPECT_EQ(p->actual_s, study_->actual_s);
  EXPECT_EQ(p->summation_s, study_->summation_s);
  EXPECT_EQ(p->alpha_source, "exact");
  EXPECT_EQ(p->inputs_source, "measured");
  EXPECT_EQ(p->snapshot_version, 1u);
}

TEST_F(ServerTest, BatchReturnsResultsInOrder) {
  start_server();
  serve::Client client = connect();
  const std::vector<serve::QueryKey> queries{
      {"BT", "S", 4, 2}, {"bt", "s", 4, 2}, {"BT", "S", 4, 99}};
  const auto results = client.predict_batch(queries);
  ASSERT_TRUE(results.has_value());
  ASSERT_EQ(results->size(), 3u);
  EXPECT_TRUE((*results)[0].ok);
  EXPECT_TRUE((*results)[1].ok);  // canonicalized spelling
  EXPECT_EQ((*results)[1].key.application, "BT");
  EXPECT_EQ((*results)[0].coupling_s, (*results)[1].coupling_s);
  EXPECT_FALSE((*results)[2].ok);  // chain 99 > loop size
}

TEST_F(ServerTest, ManyConcurrentClientsAllGetIdenticalBits) {
  serve::ServerConfig config;
  config.workers = 4;
  config.max_inflight = 64;
  start_server(config);
  // Warm the cell memo so concurrent requests are pure cache reads.
  {
    serve::Client warm = connect();
    ASSERT_TRUE(warm.predict({"BT", "S", 4, 2}).has_value());
  }
  const double expected = study_->by_length[0].prediction_s;
  constexpr int kClients = 8;
  constexpr int kRequests = 5;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([this, expected, &mismatches, &failures] {
      serve::Client client = connect();
      for (int i = 0; i < kRequests; ++i) {
        const auto p = client.predict({"BT", "S", 4, 2});
        if (!p.has_value() || !p->ok) {
          failures.fetch_add(1);
        } else if (p->coupling_s != expected) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GE(server_->requests_handled(),
            static_cast<std::uint64_t>(kClients * kRequests));
}

TEST_F(ServerTest, MalformedFramePrefixIsRejected) {
  start_server();
  serve::Client client = connect();
  const auto response = client.roundtrip_raw("banana\n");
  ASSERT_TRUE(response.has_value());
  EXPECT_NE(response->find("\"code\":400"), std::string::npos);
  // The server closed the connection after the error frame.
  EXPECT_FALSE(client.roundtrip(serve::ping_request()).has_value());
  EXPECT_EQ(server_->metrics().malformed_frames, 1u);
}

TEST_F(ServerTest, MalformedJsonPayloadGetsErrorButKeepsConnection) {
  start_server();
  serve::Client client = connect();
  const auto response = client.roundtrip("{\"op\":\"nonsense\"}");
  ASSERT_TRUE(response.has_value());
  EXPECT_NE(response->find("\"code\":400"), std::string::npos);
  EXPECT_TRUE(client.ping());  // same connection still serves
}

TEST_F(ServerTest, OversizedFrameIsRejected) {
  serve::ServerConfig config;
  config.max_frame_bytes = 128;
  start_server(config);
  serve::Client client = connect();
  const std::string big(4096, 'x');
  const auto response = client.roundtrip(big);
  ASSERT_TRUE(response.has_value());
  EXPECT_NE(response->find("\"code\":413"), std::string::npos);
  EXPECT_EQ(server_->metrics().oversized_frames, 1u);
}

TEST_F(ServerTest, OverloadFastRejectsWithoutQueueing) {
  serve::ServerConfig config;
  config.workers = 1;
  config.max_inflight = 1;
  start_server(config);
  // First client occupies the only in-flight slot (connections count
  // against the limit for as long as they stay open).
  serve::Client first = connect();
  ASSERT_TRUE(first.ping());  // guarantees it was accepted and dispatched
  // Second client must get an overload frame immediately — the worker is
  // irrelevant; the accept loop answers.
  serve::Client second = connect();
  const auto response = second.roundtrip(serve::ping_request());
  ASSERT_TRUE(response.has_value());
  EXPECT_NE(response->find("\"code\":429"), std::string::npos);
  EXPECT_EQ(server_->metrics().rejected_overload, 1u);
  // Once the first client leaves, capacity frees up.
  first.close();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool accepted = false;
  while (!accepted && std::chrono::steady_clock::now() < deadline) {
    serve::Client retry = connect();
    accepted = retry.ping();
    if (!accepted) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(accepted);
}

TEST_F(ServerTest, GracefulStopAnswersInFlightRequests) {
  start_server();
  serve::Client client = connect();
  std::optional<serve::Prediction> result;
  std::thread requester([&client, &result] {
    // An uncached cell: the engine measures it while stop() runs.
    result = client.predict({"BT", "S", 9, 2});
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server_->stop();  // must drain, not drop
  requester.join();
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->ok) << result->error;
  EXPECT_TRUE(std::isfinite(result->coupling_s));
  EXPECT_FALSE(server_->running());
}

TEST_F(ServerTest, StopIsIdempotentAndRestartable) {
  start_server();
  server_->stop();
  server_->stop();
  server_->start();  // a stopped server can come back
  serve::Client client = connect();
  EXPECT_TRUE(client.ping());
}

TEST_F(ServerTest, HotReloadServesNewValuesWithoutRestart) {
  start_server();
  serve::Client client = connect();
  const auto before = client.predict({"BT", "S", 4, 2});
  ASSERT_TRUE(before.has_value());
  ASSERT_TRUE(before->ok);
  EXPECT_EQ(before->snapshot_version, 1u);
  EXPECT_EQ(before->coupling_s, study_->by_length[0].prediction_s);

  write_db(2.0);  // doubled chain times -> different couplings
  ASSERT_TRUE(source_->poll());

  const auto after = client.predict({"BT", "S", 4, 2});
  ASSERT_TRUE(after.has_value());
  ASSERT_TRUE(after->ok) << after->error;
  EXPECT_EQ(after->snapshot_version, 2u);
  EXPECT_NE(after->coupling_s, before->coupling_s);
  // Cell inputs are snapshot-independent: still served from the memo.
  EXPECT_TRUE(after->cache_hit);
  EXPECT_EQ(after->actual_s, before->actual_s);
  EXPECT_EQ(server_->metrics().snapshot_version, 2u);
}

/// The snapshot source sniffs the format per reload, so an operator can
/// swap a live server between CSV and packed snapshots under the same
/// path — the served values must be bit-identical across the swap, and a
/// corrupt packed file must leave the old snapshot serving.
TEST_F(ServerTest, HotReloadSwapsBetweenCsvAndPackedFormats) {
  start_server();
  serve::Client client = connect();
  const auto baseline = client.predict({"BT", "S", 4, 2});
  ASSERT_TRUE(baseline.has_value());
  ASSERT_TRUE(baseline->ok);
  EXPECT_EQ(baseline->snapshot_version, 1u);

  // CSV -> packed, with new content (doubled chain times).
  write_db_as(2.0, /*packed=*/true);
  ASSERT_TRUE(source_->poll());
  const auto packed = client.predict({"BT", "S", 4, 2});
  ASSERT_TRUE(packed.has_value());
  ASSERT_TRUE(packed->ok) << packed->error;
  EXPECT_EQ(packed->snapshot_version, 2u);
  EXPECT_NE(packed->coupling_s, baseline->coupling_s);

  // packed -> CSV with the same content: a format change only.  The served
  // prediction must not move by a single bit.
  write_db_as(2.0, /*packed=*/false);
  ASSERT_TRUE(source_->poll());
  const auto csv = client.predict({"BT", "S", 4, 2});
  ASSERT_TRUE(csv.has_value());
  ASSERT_TRUE(csv->ok) << csv->error;
  EXPECT_EQ(csv->snapshot_version, 3u);
  EXPECT_EQ(csv->coupling_s, packed->coupling_s);
  EXPECT_EQ(csv->summation_s, packed->summation_s);
  EXPECT_EQ(csv->actual_s, packed->actual_s);

  // A corrupt packed file (valid magic, truncated body) must fail the
  // reload and keep the CSV snapshot serving.
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << "KCOUPKCS garbage";
  }
  EXPECT_FALSE(source_->poll());
  EXPECT_GE(source_->reload_failures(), 1u);
  const auto still = client.predict({"BT", "S", 4, 2});
  ASSERT_TRUE(still.has_value());
  ASSERT_TRUE(still->ok) << still->error;
  EXPECT_EQ(still->snapshot_version, 3u);
  EXPECT_EQ(still->coupling_s, csv->coupling_s);

  // A fixed packed file retriggers the reload.
  write_db_as(3.0, /*packed=*/true);
  ASSERT_TRUE(source_->poll());
  const auto fixed = client.predict({"BT", "S", 4, 2});
  ASSERT_TRUE(fixed.has_value());
  ASSERT_TRUE(fixed->ok) << fixed->error;
  EXPECT_EQ(fixed->snapshot_version, 4u);
  EXPECT_NE(fixed->coupling_s, csv->coupling_s);
}

TEST_F(ServerTest, StatsOpReportsCountersAndLatency) {
  start_server();
  serve::Client client = connect();
  ASSERT_TRUE(client.predict({"BT", "S", 4, 2}).has_value());
  const auto stats = client.stats();
  ASSERT_TRUE(stats.has_value());
  const auto requests = serve::json_number_field(*stats, "requests");
  ASSERT_TRUE(requests.has_value());
  EXPECT_GE(*requests, 1.0);
  const auto p99 = serve::json_number_field(*stats, "latency_p99_s");
  ASSERT_TRUE(p99.has_value());
  EXPECT_GT(*p99, 0.0);
  // The wire response carries the introspection fields `kcoup stats` renders:
  // uptime and the snapshot reload/generation counters.
  const auto uptime = serve::json_number_field(*stats, "uptime_s");
  ASSERT_TRUE(uptime.has_value());
  EXPECT_GT(*uptime, 0.0);
  EXPECT_TRUE(serve::json_number_field(*stats, "snapshot_reloads"));
  EXPECT_TRUE(
      serve::json_number_field(*stats, "snapshot_reload_failures"));
  EXPECT_TRUE(serve::json_number_field(*stats, "snapshot_version"));

  const serve::ServeMetrics metrics = server_->metrics();
  EXPECT_GE(metrics.requests, 2u);
  EXPECT_EQ(metrics.predictions, 1u);
  EXPECT_EQ(metrics.db_records, study_->by_length[0].chains.size());
  EXPECT_GT(metrics.latency_p50_s, 0.0);
  EXPECT_GE(metrics.latency_max_s, metrics.latency_p50_s);
  // Reporters agree with each other on the counters they share.
  const std::string jsonl = metrics.to_jsonl();
  EXPECT_NE(jsonl.find("\"predictions\":1"), std::string::npos);
  EXPECT_NE(metrics.to_csv().find("latency_p99_s"), std::string::npos);
  EXPECT_GT(metrics.uptime_s, 0.0);
  EXPECT_NE(metrics.to_csv().find("uptime_s"), std::string::npos);
  EXPECT_NE(metrics.to_table().to_string().find("uptime"), std::string::npos);
}

}  // namespace
}  // namespace kcoup
