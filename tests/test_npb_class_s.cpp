// End-to-end integration tests: the full numeric benchmarks at the paper's
// Class S scale (12^3; NPB-standard iteration counts), run on the simmpi
// runtime at the paper's processor counts.  These are the heaviest tests in
// the suite (~a second each) and exercise every substrate together:
// decompositions, distributed line solves, wavefront sweeps, halo
// exchanges, collectives and virtual time.

#include <gtest/gtest.h>

#include "npb/bt/bt_app.hpp"
#include "npb/common/problem.hpp"
#include "npb/lu/lu_app.hpp"
#include "npb/sp/sp_app.hpp"

namespace kcoup::npb {
namespace {

TEST(ClassSIntegration, BtFullClassSConverges) {
  const ProblemSize size = problem_size(Benchmark::kBT, ProblemClass::kS);
  bt::BtConfig cfg;
  cfg.n = size.n;
  cfg.iterations = size.iterations;
  for (int ranks : {1, 4}) {
    const auto r = bt::run_bt(cfg, ranks);
    EXPECT_LT(r.final_residual, 1e-6) << "ranks=" << ranks;
    EXPECT_LT(r.final_error, 1e-5) << "ranks=" << ranks;
  }
}

TEST(ClassSIntegration, BtClassSNineRanksMatchesSerial) {
  const ProblemSize size = problem_size(Benchmark::kBT, ProblemClass::kS);
  bt::BtConfig cfg;
  cfg.n = size.n;
  cfg.iterations = 20;  // shortened: we compare states, not convergence
  const auto serial = bt::run_bt(cfg, 1);
  const auto nine = bt::run_bt(cfg, 9);
  EXPECT_NEAR(serial.final_residual, nine.final_residual,
              1e-9 * (1.0 + serial.final_residual));
  EXPECT_NEAR(serial.final_error, nine.final_error, 1e-9);
}

TEST(ClassSIntegration, SpFullClassSConverges) {
  const ProblemSize size = problem_size(Benchmark::kSP, ProblemClass::kS);
  sp::SpConfig cfg;
  cfg.n = size.n;
  cfg.iterations = size.iterations;
  for (int ranks : {1, 4}) {
    const auto r = sp::run_sp(cfg, ranks);
    EXPECT_LT(r.final_residual, 1e-6) << "ranks=" << ranks;
    EXPECT_LT(r.final_error, 1e-5) << "ranks=" << ranks;
  }
}

TEST(ClassSIntegration, LuFullClassSConverges) {
  const ProblemSize size = problem_size(Benchmark::kLU, ProblemClass::kS);
  lu::LuConfig cfg;
  cfg.n = size.n;
  cfg.iterations = size.iterations;
  for (int ranks : {1, 4, 8}) {
    const auto r = lu::run_lu(cfg, ranks);
    EXPECT_LT(r.final_residual, 1e-4) << "ranks=" << ranks;
    EXPECT_LT(r.final_error, 1e-3) << "ranks=" << ranks;
  }
}

TEST(ClassSIntegration, SurfaceIntegralIsRankCountInvariant) {
  lu::LuConfig cfg;
  cfg.n = 12;
  cfg.iterations = 30;
  const auto r1 = lu::run_lu(cfg, 1);
  const auto r4 = lu::run_lu(cfg, 4);
  const auto r8 = lu::run_lu(cfg, 8);
  EXPECT_NEAR(r1.surface_integral, r4.surface_integral,
              1e-9 * std::fabs(r1.surface_integral));
  EXPECT_NEAR(r1.surface_integral, r8.surface_integral,
              1e-9 * std::fabs(r1.surface_integral));
  // The integral is a nontrivial number (the u field is not symmetric).
  EXPECT_GT(std::fabs(r1.surface_integral), 0.1);
}

}  // namespace
}  // namespace kcoup::npb
