// Fuzz and edge-case tests for CouplingDatabase::load_csv: campaign
// persistence must never corrupt the store, whatever the file contains.

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "coupling/database.hpp"

namespace kcoup::coupling {
namespace {

constexpr const char* kHeader =
    "application,config,ranks,chain_length,chain_start,chain_time,"
    "isolated_sum\n";

TEST(DatabaseFuzzTest, TruncatedLinesThrow) {
  for (const char* body :
       {"BT", "BT,W", "BT,W,4", "BT,W,4,2", "BT,W,4,2,0", "BT,W,4,2,0,1.5"}) {
    CouplingDatabase db;
    std::istringstream in(std::string(kHeader) + body + "\n");
    EXPECT_THROW(db.load_csv(in), std::runtime_error) << body;
    EXPECT_EQ(db.size(), 0u) << body;
  }
}

TEST(DatabaseFuzzTest, ExtraFieldsThrow) {
  CouplingDatabase db;
  std::istringstream in(std::string(kHeader) + "BT,W,4,2,0,1.5,2.0,junk\n");
  EXPECT_THROW(db.load_csv(in), std::runtime_error);
}

TEST(DatabaseFuzzTest, NonNumericFieldsThrow) {
  for (const char* body :
       {"BT,W,four,2,0,1.5,2.0", "BT,W,4,two,0,1.5,2.0",
        "BT,W,4,2,zero,1.5,2.0", "BT,W,4,2,0,fast,2.0",
        "BT,W,4,2,0,1.5,much", "BT,W,4x,2,0,1.5,2.0",
        "BT,W,4,2,0,1.5e,2.0", "BT,W,4,2,0,1.5,2.0extra"}) {
    CouplingDatabase db;
    std::istringstream in(std::string(kHeader) + body + "\n");
    EXPECT_THROW(db.load_csv(in), std::runtime_error) << body;
  }
}

TEST(DatabaseFuzzTest, NonPositiveAndNonFiniteValuesThrow) {
  for (const char* body :
       {"BT,W,4,2,0,0,2.0", "BT,W,4,2,0,-1.5,2.0", "BT,W,4,2,0,1.5,0",
        "BT,W,4,2,0,1.5,-2.0", "BT,W,4,2,0,nan,2.0", "BT,W,4,2,0,inf,2.0",
        "BT,W,4,2,0,1.5,nan"}) {
    CouplingDatabase db;
    std::istringstream in(std::string(kHeader) + body + "\n");
    EXPECT_THROW(db.load_csv(in), std::runtime_error) << body;
  }
}

TEST(DatabaseFuzzTest, DuplicateKeysLastWins) {
  CouplingDatabase db;
  std::istringstream in(std::string(kHeader) +
                        "BT,W,4,2,0,1.5,2.0\n"
                        "BT,W,4,2,0,7.5,8.0\n"
                        "BT,W,4,2,0,3.5,4.0\n");
  db.load_csv(in);
  EXPECT_EQ(db.size(), 1u);
  const auto r = db.find(CouplingKey{"BT", "W", 4, 2, 0});
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->chain_time, 3.5);
  EXPECT_DOUBLE_EQ(r->isolated_sum, 4.0);
}

TEST(DatabaseFuzzTest, BlankAndCrLfLinesAreTolerated) {
  CouplingDatabase db;
  std::istringstream in(std::string(kHeader) +
                        "\n"
                        "BT,W,4,2,0,1.5,2.0\r\n"
                        "\n"
                        "SP,A,9,3,1,2.5,3.0\n");
  db.load_csv(in);
  EXPECT_EQ(db.size(), 2u);
  EXPECT_TRUE(db.find(CouplingKey{"BT", "W", 4, 2, 0}).has_value());
  EXPECT_TRUE(db.find(CouplingKey{"SP", "A", 9, 3, 1}).has_value());
}

/// Deterministic mutation fuzzing: a valid store with random single-byte
/// corruptions either loads some prefix-consistent subset or throws — it
/// never crashes and never stores an unparseable record.
TEST(DatabaseFuzzTest, RandomCorruptionsNeverCorruptTheStore) {
  CouplingDatabase source;
  std::mt19937 rng(20020722);  // HPDC 2002 vintage seed
  std::uniform_int_distribution<int> ranks_dist(1, 64);
  std::uniform_real_distribution<double> time_dist(1e-6, 10.0);
  for (int i = 0; i < 32; ++i) {
    CouplingRecord r;
    r.key.application = (i % 3 == 0) ? "BT" : (i % 3 == 1) ? "SP" : "LU";
    r.key.config = (i % 2 == 0) ? "W" : "A";
    r.key.ranks = ranks_dist(rng);
    r.key.chain_length = 2 + static_cast<std::size_t>(i % 3);
    r.key.chain_start = static_cast<std::size_t>(i % 5);
    r.chain_time = time_dist(rng);
    r.isolated_sum = time_dist(rng);
    source.record(std::move(r));
  }
  std::ostringstream clean;
  source.save_csv(clean);
  const std::string text = clean.str();

  std::uniform_int_distribution<std::size_t> pos_dist(0, text.size() - 1);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = text;
    const std::size_t pos = pos_dist(rng);
    mutated[pos] = static_cast<char>(byte_dist(rng));

    CouplingDatabase db;
    std::istringstream in(mutated);
    try {
      db.load_csv(in);
    } catch (const std::runtime_error&) {
      continue;  // rejected: fine
    }
    // Accepted: every stored record must be well-formed.
    for (const CouplingRecord& r : db.records()) {
      EXPECT_TRUE(std::isfinite(r.chain_time));
      EXPECT_GT(r.chain_time, 0.0);
      EXPECT_TRUE(std::isfinite(r.isolated_sum));
      EXPECT_GT(r.isolated_sum, 0.0);
      EXPECT_TRUE(std::isfinite(r.coupling()));
    }
  }
}

/// Round-trip fuzz: any valid store survives save -> load -> save exactly.
TEST(DatabaseFuzzTest, SaveLoadSaveIsStable) {
  CouplingDatabase source;
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> time_dist(1e-9, 1e3);
  for (int i = 0; i < 64; ++i) {
    CouplingRecord r;
    r.key.application = "A" + std::to_string(i % 7);
    r.key.config = "c" + std::to_string(i % 4);
    r.key.ranks = 1 << (i % 6);
    r.key.chain_length = 1 + static_cast<std::size_t>(i % 4);
    r.key.chain_start = static_cast<std::size_t>(i % 6);
    r.chain_time = time_dist(rng);
    r.isolated_sum = time_dist(rng);
    source.record(std::move(r));
  }
  std::ostringstream first;
  source.save_csv(first);

  CouplingDatabase loaded;
  std::istringstream in(first.str());
  loaded.load_csv(in);
  EXPECT_EQ(loaded.size(), source.size());

  std::ostringstream second;
  loaded.save_csv(second);
  EXPECT_EQ(first.str(), second.str());
}

}  // namespace
}  // namespace kcoup::coupling
