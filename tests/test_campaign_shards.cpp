// Sharded campaigns and the merge coordinator: consistent-hash partitioning
// (stability, reorder invariance, balance), N-shard runs merging to a
// database byte-identical to the serial path — including killed-and-resumed
// shards, shard-level and coordinator-level work stealing — torn-journal
// tolerance at every truncation offset, and failed-task accounting through
// the merge.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/coordinator.hpp"
#include "campaign/executor.hpp"
#include "campaign/faultsim.hpp"
#include "campaign/journal.hpp"
#include "campaign/planner.hpp"
#include "campaign/shard.hpp"
#include "coupling/database.hpp"

namespace kcoup::campaign {
namespace {

// --- Fixtures ----------------------------------------------------------------

/// Deterministic callable-kernel application; kernel k costs (k+1) * scale.
struct SyntheticApp {
  std::vector<std::unique_ptr<coupling::CallableKernel>> kernels;
  coupling::LoopApplication app;

  explicit SyntheticApp(std::size_t loop_size, double scale) {
    app.name = "synthetic";
    app.iterations = 3;
    for (std::size_t k = 0; k < loop_size; ++k) {
      kernels.push_back(std::make_unique<coupling::CallableKernel>(
          "k" + std::to_string(k),
          [k, scale] { return static_cast<double>(k + 1) * scale; }));
      app.loop.push_back(kernels.back().get());
    }
  }

  [[nodiscard]] const coupling::LoopApplication& application() const {
    return app;
  }
};

struct AppOwner {
  SyntheticApp inner;
  AppOwner(std::size_t loop_size, double scale) : inner(loop_size, scale) {}
  [[nodiscard]] const coupling::LoopApplication& app() const {
    return inner.app;
  }
};

CampaignStudy synthetic_cell(const std::string& name, int ranks,
                             std::size_t loop_size, double scale) {
  CampaignStudy cell;
  cell.application = name;
  cell.config = "C";
  cell.ranks = ranks;
  cell.factory = [loop_size, scale] {
    return own_app(std::make_unique<AppOwner>(loop_size, scale));
  };
  return cell;
}

/// Two synthetic cells, chains {2, 3}: 26 deduplicated tasks.
CampaignSpec synthetic_spec() {
  CampaignSpec spec;
  spec.chain_lengths = {2, 3};
  spec.studies.push_back(synthetic_cell("A", 1, 4, 1.0));
  spec.studies.push_back(synthetic_cell("B", 4, 4, 2.0));
  return spec;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot read " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return std::move(out).str();
}

/// The serial ground truth: run the whole campaign in one process, record
/// into a database, return the saved CSV bytes (and the result).
std::string serial_csv(const CampaignSpec& spec, CampaignResult* result_out,
                       const std::string& name) {
  coupling::CouplingDatabase db;
  CampaignResult result = run_campaign(spec, 1, &db);
  const std::string path = testing::TempDir() + name;
  db.save_csv_file(path);
  if (result_out != nullptr) *result_out = std::move(result);
  std::string bytes = read_bytes(path);
  std::remove(path.c_str());
  return bytes;
}

/// Merge a shard directory and return the saved-CSV bytes of the recorded
/// database.
std::string merged_csv(const CampaignSpec& spec, const MergeOptions& options,
                       MergeResult* merge_out, const std::string& name) {
  MergeResult merged = merge_shards(spec, options);
  coupling::CouplingDatabase db;
  record_campaign(spec, merged.result, db);
  const std::string path = testing::TempDir() + name;
  db.save_csv_file(path);
  if (merge_out != nullptr) *merge_out = std::move(merged);
  std::string bytes = read_bytes(path);
  std::remove(path.c_str());
  return bytes;
}

// --- Consistent hashing ------------------------------------------------------

TEST(TaskKeyHashTest, GoldenValuesPinThePlatformContract) {
  // These constants are the on-disk partitioning contract: if they change,
  // resuming an old shard directory silently re-partitions the plan and
  // every shard re-executes (or worse, skips) the wrong tasks.  Do not
  // update them without a migration story.
  const TaskKey chain{"BT", "W", 4, TaskKind::kChain, 2, 3};
  const TaskKey actual{"synthetic", "C", 1, TaskKind::kActual, 0, 0};
  const TaskKey epi{"LU", "A", 16, TaskKind::kEpilogue, 1, 0};
  EXPECT_EQ(task_key_hash(chain), UINT64_C(0x2dd8da2bc52ce65a));
  EXPECT_EQ(task_key_hash(actual), UINT64_C(0x4d6c80057faf9ba5));
  EXPECT_EQ(task_key_hash(epi), UINT64_C(0xf168db6f05e42dc7));
}

TEST(TaskKeyHashTest, HashIsAPureFunctionOfTheKeyFields) {
  const TaskKey key{"BT", "W", 9, TaskKind::kChain, 1, 2};
  const std::uint64_t first = task_key_hash(key);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(task_key_hash(key), first);
  }
  // Every field participates.
  TaskKey k2 = key;
  k2.application = "SP";
  EXPECT_NE(task_key_hash(k2), first);
  k2 = key;
  k2.config = "A";
  EXPECT_NE(task_key_hash(k2), first);
  k2 = key;
  k2.ranks = 16;
  EXPECT_NE(task_key_hash(k2), first);
  k2 = key;
  k2.kind = TaskKind::kPrologue;
  EXPECT_NE(task_key_hash(k2), first);
  k2 = key;
  k2.index = 2;
  EXPECT_NE(task_key_hash(k2), first);
  k2 = key;
  k2.length = 3;
  EXPECT_NE(task_key_hash(k2), first);
}

TEST(TaskKeyHashTest, StringBoundaryIsUnambiguous) {
  // ("ab", "c") and ("a", "bc") must not collide: the field separator is
  // part of the digest.
  TaskKey a{"ab", "c", 1, TaskKind::kChain, 0, 1};
  TaskKey b{"a", "bc", 1, TaskKind::kChain, 0, 1};
  EXPECT_NE(task_key_hash(a), task_key_hash(b));
}

TEST(ShardOfTest, DegenerateCountsMapToShardZero) {
  const TaskKey key{"BT", "W", 4, TaskKind::kActual, 0, 0};
  EXPECT_EQ(shard_of(key, 0), 0u);
  EXPECT_EQ(shard_of(key, 1), 0u);
}

TEST(ShardOfTest, AssignmentIsInvariantUnderPlanReordering) {
  CampaignSpec forward = synthetic_spec();
  CampaignSpec reversed;
  reversed.chain_lengths = {3, 2};
  reversed.studies.push_back(synthetic_cell("B", 4, 4, 2.0));
  reversed.studies.push_back(synthetic_cell("A", 1, 4, 1.0));

  const CampaignPlan p1 = plan_campaign(forward);
  const CampaignPlan p2 = plan_campaign(reversed);
  ASSERT_EQ(p1.tasks.size(), p2.tasks.size());

  for (const std::size_t shards : {2u, 3u, 8u}) {
    std::map<TaskKey, std::size_t> assign1;
    for (const MeasurementTask& t : p1.tasks) {
      assign1[t.key] = shard_of(t.key, shards);
    }
    for (const MeasurementTask& t : p2.tasks) {
      const auto it = assign1.find(t.key);
      ASSERT_NE(it, assign1.end()) << to_string(t.key);
      EXPECT_EQ(shard_of(t.key, shards), it->second) << to_string(t.key);
    }
  }
}

TEST(ShardOfTest, PartitionIsBalancedWithinDocumentedTolerance) {
  // A synthetic population large enough for the law of large numbers: 1024
  // keys spread over applications, configs, ranks, kinds and indices.  The
  // documented guarantee (docs/campaign.md) is every shard within +-30% of
  // the fair share for N in {2, 3, 8}.
  std::vector<TaskKey> keys;
  for (const char* app : {"BT", "SP", "LU", "synthetic"}) {
    for (const char* cfg : {"S", "W", "A", "B"}) {
      for (int ranks : {1, 4, 9, 16}) {
        for (std::size_t index = 0; index < 4; ++index) {
          keys.push_back(TaskKey{app, cfg, ranks, TaskKind::kChain, index, 2});
          keys.push_back(TaskKey{app, cfg, ranks, TaskKind::kChain, index, 3});
          keys.push_back(
              TaskKey{app, cfg, ranks, TaskKind::kPrologue, index, 0});
          keys.push_back(
              TaskKey{app, cfg, ranks, TaskKind::kEpilogue, index, 0});
        }
      }
    }
  }
  ASSERT_EQ(keys.size(), 1024u);

  for (const std::size_t shards : {2u, 3u, 8u}) {
    std::vector<std::size_t> counts(shards, 0);
    for (const TaskKey& key : keys) {
      const std::size_t s = shard_of(key, shards);
      ASSERT_LT(s, shards);
      ++counts[s];
    }
    const double fair =
        static_cast<double>(keys.size()) / static_cast<double>(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      SCOPED_TRACE("shards=" + std::to_string(shards) + " shard=" +
                   std::to_string(s));
      EXPECT_GE(static_cast<double>(counts[s]), fair * 0.7);
      EXPECT_LE(static_cast<double>(counts[s]), fair * 1.3);
    }
  }
}

// --- Journal failure records and torn tails ----------------------------------

TEST(JournalFailureRecordTest, ErrorRoundTripsAndSuccessLinesAreUnchanged) {
  JournalEntry ok{TaskKey{"BT", "W", 4, TaskKind::kChain, 1, 2}, 0.125, 2, ""};
  const std::string ok_line = journal_line(ok);
  // Success lines must stay byte-identical to the pre-failure-record format
  // so old journals and new journals interoperate.
  EXPECT_EQ(ok_line.find("error"), std::string::npos);
  const auto ok_back = parse_journal_line(ok_line);
  ASSERT_TRUE(ok_back.has_value());
  EXPECT_TRUE(ok_back->ok());
  EXPECT_EQ(ok_back->value, 0.125);

  JournalEntry failed{TaskKey{"BT", "W", 4, TaskKind::kChain, 1, 2}, 0.0, 3,
                      "injected \"construct\" fault"};
  const auto back = parse_journal_line(journal_line(failed));
  ASSERT_TRUE(back.has_value());
  EXPECT_FALSE(back->ok());
  EXPECT_EQ(back->attempts, 3);
  EXPECT_EQ(back->error, "injected \"construct\" fault");
}

TEST(JournalFailureRecordTest, LoadJournalSkipsFailuresSoResumeRetriesThem) {
  std::ostringstream file;
  file << journal_line(JournalEntry{
              TaskKey{"A", "C", 1, TaskKind::kChain, 0, 1}, 1.5, 1, ""})
       << '\n'
       << journal_line(JournalEntry{
              TaskKey{"A", "C", 1, TaskKind::kChain, 1, 1}, 0.0, 3, "boom"})
       << '\n';
  std::istringstream in(file.str());
  const auto completed = load_journal(in);
  EXPECT_EQ(completed.size(), 1u);

  std::istringstream in2(file.str());
  const JournalLoad load = load_journal_entries(in2);
  EXPECT_EQ(load.completed.size(), 1u);
  EXPECT_EQ(load.failed.size(), 1u);
  EXPECT_FALSE(load.torn_tail);
  EXPECT_EQ(load.malformed, 0u);
}

TEST(TornJournalTest, TruncationAtEveryByteOffsetOfTheLastRecord) {
  const JournalEntry e1{TaskKey{"A", "C", 1, TaskKind::kChain, 0, 1},
                        0.0625, 1, ""};
  const JournalEntry e2{TaskKey{"A", "C", 1, TaskKind::kChain, 1, 1},
                        0.125, 1, ""};
  const JournalEntry e3{TaskKey{"A", "C", 1, TaskKind::kChain, 2, 1},
                        0.017857142857142856, 2, ""};
  const std::string l1 = journal_line(e1) + "\n";
  const std::string l2 = journal_line(e2) + "\n";
  const std::string l3 = journal_line(e3) + "\n";
  const std::string prefix = l1 + l2;
  const std::string path = testing::TempDir() + "torn.jsonl";

  for (std::size_t cut = 0; cut <= l3.size(); ++cut) {
    SCOPED_TRACE("cut=" + std::to_string(cut));
    {
      std::ofstream out(path, std::ios::trunc | std::ios::binary);
      out << prefix << l3.substr(0, cut);
    }
    const JournalLoad load = load_journal_file(path);
    ASSERT_TRUE(load.exists);
    EXPECT_EQ(load.malformed, 0u);
    if (cut == 0) {
      // Clean kill between records: two complete entries, nothing torn.
      EXPECT_EQ(load.completed.size(), 2u);
      EXPECT_FALSE(load.torn_tail);
    } else if (cut >= l3.size() - 1) {
      // The full record — with or without its newline — parses.  The third
      // value must survive bit-exactly (0.017857... is not representable).
      EXPECT_EQ(load.completed.size(), 3u);
      EXPECT_FALSE(load.torn_tail);
      EXPECT_EQ(load.completed.at(e3.key).value, e3.value);
    } else {
      // A mid-record tear: the partial line is skipped, counted as the torn
      // tail, and everything before it survives.
      EXPECT_EQ(load.completed.size(), 2u);
      EXPECT_TRUE(load.torn_tail);
    }
    EXPECT_EQ(load.completed.at(e1.key).value, e1.value);
    EXPECT_EQ(load.completed.at(e2.key).value, e2.value);
  }
  std::remove(path.c_str());
}

TEST(TornJournalTest, MidStreamGarbageIsMalformedNotTorn) {
  std::ostringstream file;
  file << journal_line(JournalEntry{
              TaskKey{"A", "C", 1, TaskKind::kChain, 0, 1}, 1.0, 1, ""})
       << '\n'
       << "{\"application\":\"A\",\"conf" << '\n'  // torn... but not last
       << journal_line(JournalEntry{
              TaskKey{"A", "C", 1, TaskKind::kChain, 1, 1}, 2.0, 1, ""})
       << '\n';
  std::istringstream in(file.str());
  const JournalLoad load = load_journal_entries(in);
  EXPECT_EQ(load.completed.size(), 2u);
  EXPECT_EQ(load.malformed, 1u);
  EXPECT_FALSE(load.torn_tail);
}

TEST(TornJournalTest, MergeReportsTornTailAndStealsTheLostTask) {
  const CampaignSpec spec = synthetic_spec();
  const std::string serial = serial_csv(spec, nullptr, "torn_serial.csv");

  const std::string dir = fresh_dir("torn_merge");
  ShardOptions options;
  options.shards = 1;
  options.shard_id = 0;
  options.journal_dir = dir;
  const ShardResult r = run_shard(spec, options, 1);
  ASSERT_TRUE(r.complete());

  // Tear the final record in half, as a kill mid-write would.
  const std::string journal = shard_journal_path(dir, 0);
  std::string bytes = read_bytes(journal);
  const std::size_t last_start = bytes.rfind('{');
  ASSERT_NE(last_start, std::string::npos);
  const std::string torn =
      bytes.substr(0, last_start + (bytes.size() - last_start) / 2);
  {
    std::ofstream out(journal, std::ios::trunc | std::ios::binary);
    out << torn;
  }

  MergeOptions merge;
  merge.journal_dir = dir;
  MergeResult no_steal = merge_shards(spec, merge);
  EXPECT_EQ(no_steal.torn_tails, 1u);
  EXPECT_EQ(no_steal.missing.size(), 1u);
  ASSERT_EQ(no_steal.shard_stats.size(), 1u);
  EXPECT_TRUE(no_steal.shard_stats[0].torn_tail);

  merge.steal = true;
  merge.workers = 1;
  MergeResult stolen;
  const std::string csv = merged_csv(spec, merge, &stolen, "torn_merged.csv");
  EXPECT_EQ(stolen.tasks_stolen, 1u);
  EXPECT_TRUE(stolen.missing.empty());
  EXPECT_EQ(csv, serial);
}

// --- Bit-identical N-shard merges -------------------------------------------

TEST(ShardMergeTest, MergedDatabaseIsByteIdenticalForEveryShardCount) {
  const CampaignSpec spec = synthetic_spec();
  CampaignResult serial_result;
  const std::string serial = serial_csv(spec, &serial_result, "ident.csv");
  ASSERT_TRUE(serial_result.complete());

  for (const std::size_t shards : {1u, 2u, 3u, 8u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const std::string dir = fresh_dir("ident_" + std::to_string(shards));
    std::size_t assigned_total = 0;
    for (std::size_t k = 0; k < shards; ++k) {
      ShardOptions options;
      options.shards = shards;
      options.shard_id = k;
      options.journal_dir = dir;
      const ShardResult r = run_shard(spec, options, 2);
      EXPECT_TRUE(r.complete());
      EXPECT_EQ(r.tasks_executed, r.tasks_assigned);
      assigned_total += r.tasks_assigned;
    }
    const CampaignPlan plan = plan_campaign(spec);
    EXPECT_EQ(assigned_total, plan.tasks.size()) << "partition must tile";

    MergeOptions merge;
    merge.journal_dir = dir;  // shard count comes from the manifest
    MergeResult merged;
    const std::string csv =
        merged_csv(spec, merge, &merged, "ident_m.csv");
    EXPECT_TRUE(merged.complete());
    EXPECT_EQ(merged.shards, shards);
    EXPECT_EQ(merged.tasks_merged, plan.tasks.size());
    EXPECT_EQ(merged.duplicates, 0u);
    EXPECT_EQ(csv, serial);
  }
}

TEST(ShardMergeTest, KilledShardResumesAndMergesByteIdentical) {
  const CampaignSpec spec = synthetic_spec();
  const std::string serial = serial_csv(spec, nullptr, "resume.csv");
  const std::string dir = fresh_dir("resume_shards");

  for (std::size_t k = 0; k < 3; ++k) {
    ShardOptions options;
    options.shards = 3;
    options.shard_id = k;
    options.journal_dir = dir;
    if (k == 1) {
      CampaignSpec faulty = spec;
      faulty.faults.abort_after = 2;  // killed after two tasks
      EXPECT_THROW((void)run_shard(faulty, options, 1), CampaignAborted);
      continue;
    }
    EXPECT_TRUE(run_shard(spec, options, 1).complete());
  }

  // Before the resume the merge must refuse to pretend completeness.
  MergeOptions merge;
  merge.journal_dir = dir;
  const MergeResult partial = merge_shards(spec, merge);
  EXPECT_FALSE(partial.missing.empty());

  // Resume shard 1: journaled tasks replay, the rest execute.
  ShardOptions options;
  options.shards = 3;
  options.shard_id = 1;
  options.journal_dir = dir;
  const ShardResult resumed = run_shard(spec, options, 1);
  EXPECT_TRUE(resumed.complete());
  EXPECT_EQ(resumed.tasks_resumed, 2u);
  EXPECT_EQ(resumed.tasks_executed + resumed.tasks_resumed,
            resumed.tasks_assigned);

  MergeResult merged;
  const std::string csv = merged_csv(spec, merge, &merged, "resume_m.csv");
  EXPECT_TRUE(merged.complete());
  EXPECT_EQ(csv, serial);
}

TEST(ShardMergeTest, PeerShardStealsFromDeadShardByteIdentical) {
  const CampaignSpec spec = synthetic_spec();
  const std::string serial = serial_csv(spec, nullptr, "steal.csv");
  const std::string dir = fresh_dir("steal_shards");

  // Shard 1 dies mid-run and is never resumed.
  {
    ShardOptions options;
    options.shards = 3;
    options.shard_id = 1;
    options.journal_dir = dir;
    CampaignSpec faulty = spec;
    faulty.faults.abort_after = 2;
    EXPECT_THROW((void)run_shard(faulty, options, 1), CampaignAborted);
  }
  {
    ShardOptions options;
    options.shards = 3;
    options.shard_id = 0;
    options.journal_dir = dir;
    EXPECT_TRUE(run_shard(spec, options, 1).complete());
  }
  // Shard 2 finishes its own partition, notices shard 1's stale journal
  // (steal_after_s = 0: any incomplete journal counts) and backfills it.
  ShardOptions stealer;
  stealer.shards = 3;
  stealer.shard_id = 2;
  stealer.journal_dir = dir;
  stealer.steal = true;
  const ShardResult r = run_shard(spec, stealer, 1);
  EXPECT_TRUE(r.complete());
  EXPECT_GT(r.tasks_stolen, 0u);
  EXPECT_EQ(r.steal_scans, 1u);  // shard 0 is complete; only shard 1 scanned

  MergeOptions merge;
  merge.journal_dir = dir;
  MergeResult merged;
  const std::string csv = merged_csv(spec, merge, &merged, "steal_m.csv");
  EXPECT_TRUE(merged.complete());
  EXPECT_EQ(csv, serial);
  // Shard 1's own journal still holds the two tasks it finished before the
  // kill; the stealer re-executed only the remainder, so the owner's
  // records win and nothing overlaps.
  EXPECT_EQ(merged.duplicates, 0u);
  EXPECT_GT(merged.shard_stats[2].stolen_completed, 0u);
}

TEST(ShardMergeTest, FreshStealerWatermarkRespectsLiveJournals) {
  const CampaignSpec spec = synthetic_spec();
  const std::string dir = fresh_dir("watermark");
  {
    ShardOptions options;
    options.shards = 2;
    options.shard_id = 0;
    options.journal_dir = dir;
    CampaignSpec faulty = spec;
    faulty.faults.abort_after = 1;
    EXPECT_THROW((void)run_shard(faulty, options, 1), CampaignAborted);
  }
  // Shard 1 with a large steal_after_s: shard 0's journal was written
  // milliseconds ago, so it must be treated as live and NOT stolen from.
  ShardOptions options;
  options.shards = 2;
  options.shard_id = 1;
  options.journal_dir = dir;
  options.steal = true;
  options.steal_after_s = 3600.0;
  const ShardResult r = run_shard(spec, options, 1);
  EXPECT_EQ(r.tasks_stolen, 0u);
  EXPECT_EQ(r.steal_scans, 0u);

  // With the watermark at zero the same shard steals immediately.
  options.steal_after_s = 0.0;
  const ShardResult again = run_shard(spec, options, 1);
  EXPECT_GT(again.tasks_stolen, 0u);
}

TEST(ShardMergeTest, CoordinatorStealExecutesMissingPartitionByteIdentical) {
  const CampaignSpec spec = synthetic_spec();
  const std::string serial = serial_csv(spec, nullptr, "coord.csv");
  const std::string dir = fresh_dir("coord_steal");

  // Only shard 0 of 3 ever runs.
  ShardOptions options;
  options.shards = 3;
  options.shard_id = 0;
  options.journal_dir = dir;
  EXPECT_TRUE(run_shard(spec, options, 1).complete());

  MergeOptions merge;
  merge.journal_dir = dir;
  merge.steal = true;
  merge.workers = 2;
  MergeResult merged;
  const std::string csv = merged_csv(spec, merge, &merged, "coord_m.csv");
  EXPECT_TRUE(merged.complete());
  EXPECT_GT(merged.tasks_stolen, 0u);
  EXPECT_EQ(csv, serial);

  // The coordinator journaled its stolen work: a second merge (no steal)
  // resumes from coordinator.jsonl and still matches.
  MergeOptions again;
  again.journal_dir = dir;
  MergeResult remerged;
  const std::string csv2 = merged_csv(spec, again, &remerged, "coord_m2.csv");
  EXPECT_TRUE(remerged.complete());
  EXPECT_EQ(remerged.tasks_stolen, 0u);
  EXPECT_EQ(csv2, serial);
}

// --- Failed-task accounting through the merge --------------------------------

TEST(ShardMergeTest, FailureTableMatchesSingleProcessSemantics) {
  CampaignSpec spec = synthetic_spec();
  const CampaignPlan plan = plan_campaign(spec);
  // Deterministically fail a few tasks in both cells.
  for (std::size_t i = 0; i < plan.tasks.size(); i += 9) {
    spec.faults.injections.push_back(
        FaultInjection{plan.tasks[i].key, FaultKind::kConstructThrow});
  }
  ASSERT_FALSE(spec.faults.injections.empty());

  CampaignResult serial_result;
  const std::string serial = serial_csv(spec, &serial_result, "fail.csv");
  ASSERT_FALSE(serial_result.complete());

  const std::string dir = fresh_dir("fail_shards");
  for (std::size_t k = 0; k < 3; ++k) {
    ShardOptions options;
    options.shards = 3;
    options.shard_id = k;
    options.journal_dir = dir;
    (void)run_shard(spec, options, 2);
  }

  MergeOptions merge;
  merge.journal_dir = dir;
  MergeResult merged;
  const std::string csv = merged_csv(spec, merge, &merged, "fail_m.csv");

  // Failed tasks are failures, not missing: every task has a journal record.
  EXPECT_TRUE(merged.missing.empty());
  ASSERT_EQ(merged.result.failures.size(), serial_result.failures.size());
  for (std::size_t i = 0; i < serial_result.failures.size(); ++i) {
    EXPECT_EQ(merged.result.failures[i].key, serial_result.failures[i].key);
    EXPECT_EQ(merged.result.failures[i].attempts,
              serial_result.failures[i].attempts);
    EXPECT_EQ(merged.result.failures[i].what, serial_result.failures[i].what);
  }
  // Per-study NaN hole pattern matches too.
  ASSERT_EQ(merged.result.missing.size(), serial_result.missing.size());
  for (std::size_t s = 0; s < serial_result.missing.size(); ++s) {
    EXPECT_EQ(merged.result.missing[s], serial_result.missing[s]);
  }
  // And the recorded database (which skips NaN markers) is byte-identical.
  EXPECT_EQ(csv, serial);

  // A stealing peer must not re-execute owner-journaled failures: they
  // already exhausted their retry budget.
  ShardOptions stealer;
  stealer.shards = 3;
  stealer.shard_id = 0;
  stealer.journal_dir = dir;
  stealer.steal = true;
  const ShardResult r = run_shard(spec, stealer, 1);
  EXPECT_EQ(r.tasks_stolen, 0u);
}

// --- Guard rails -------------------------------------------------------------

TEST(ShardGuardTest, OptionValidation) {
  const CampaignSpec spec = synthetic_spec();
  ShardOptions options;
  options.shards = 2;
  options.shard_id = 2;
  options.journal_dir = fresh_dir("guard");
  EXPECT_THROW((void)run_shard(spec, options, 1), std::invalid_argument);
  options.shard_id = 0;
  options.journal_dir = "";
  EXPECT_THROW((void)run_shard(spec, options, 1), std::invalid_argument);
  options.journal_dir = fresh_dir("guard");
  CampaignSpec journaled = synthetic_spec();
  journaled.journal_path = options.journal_dir + "/own.jsonl";
  EXPECT_THROW((void)run_shard(journaled, options, 1), std::invalid_argument);
}

TEST(ShardGuardTest, MismatchedShardCountsAreRejected) {
  const CampaignSpec spec = synthetic_spec();
  const std::string dir = fresh_dir("mismatch");
  ShardOptions options;
  options.shards = 3;
  options.shard_id = 0;
  options.journal_dir = dir;
  ASSERT_TRUE(run_shard(spec, options, 1).complete());
  EXPECT_EQ(read_shard_count(dir), 3u);

  // A shard launched with a different --shards would partition differently.
  ShardOptions wrong;
  wrong.shards = 4;
  wrong.shard_id = 1;
  wrong.journal_dir = dir;
  EXPECT_THROW((void)run_shard(spec, wrong, 1), std::runtime_error);

  // So would a merge with a contradicting explicit count...
  MergeOptions merge;
  merge.journal_dir = dir;
  merge.shards = 4;
  EXPECT_THROW((void)merge_shards(spec, merge), std::invalid_argument);

  // ...and a merge over a directory with no journals at all.
  MergeOptions empty;
  empty.journal_dir = fresh_dir("mismatch_empty");
  empty.shards = 2;
  EXPECT_THROW((void)merge_shards(spec, empty), std::runtime_error);
}

TEST(ShardGuardTest, ShardPublishesItsMetrics) {
  const CampaignSpec spec = synthetic_spec();
  const std::string dir = fresh_dir("metrics");
  ShardOptions options;
  options.shards = 2;
  options.shard_id = 0;
  options.journal_dir = dir;
  obs::MetricsRegistry registry;
  const ShardResult r = run_shard(spec, options, 1, &registry);
  ASSERT_TRUE(r.complete());
  const obs::MetricsSnapshot snap = registry.snapshot();
  auto counter = [&snap](const std::string& name) -> std::uint64_t {
    for (const auto& [n, v] : snap.counters) {
      if (n == name) return v;
    }
    return UINT64_C(0xdead);
  };
  EXPECT_EQ(counter("campaign.shard.count"), 2u);
  EXPECT_EQ(counter("campaign.shard.tasks_assigned"), r.tasks_assigned);
  EXPECT_EQ(counter("campaign.tasks_executed"), r.tasks_executed);
  EXPECT_EQ(r.metrics.tasks_executed, r.tasks_executed);
}

}  // namespace
}  // namespace kcoup::campaign
