// Tests for the NPB common substrate: problem tables, the randlc generator,
// fields, decompositions and the manufactured operator.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "npb/common/decomp.hpp"
#include "npb/common/field.hpp"
#include "npb/common/problem.hpp"
#include "npb/common/randlc.hpp"
#include "npb/common/stencil.hpp"

namespace kcoup::npb {
namespace {

TEST(ProblemTest, PaperDataSetTables) {
  // Table 1 (BT), Table 5 (SP), Table 7 (LU).
  EXPECT_EQ(problem_size(Benchmark::kBT, ProblemClass::kS).n, 12);
  EXPECT_EQ(problem_size(Benchmark::kBT, ProblemClass::kW).n, 32);
  EXPECT_EQ(problem_size(Benchmark::kBT, ProblemClass::kA).n, 64);
  EXPECT_EQ(problem_size(Benchmark::kSP, ProblemClass::kW).n, 36);
  EXPECT_EQ(problem_size(Benchmark::kSP, ProblemClass::kA).n, 64);
  EXPECT_EQ(problem_size(Benchmark::kSP, ProblemClass::kB).n, 102);
  EXPECT_EQ(problem_size(Benchmark::kLU, ProblemClass::kW).n, 33);
  EXPECT_EQ(problem_size(Benchmark::kLU, ProblemClass::kA).n, 64);
  EXPECT_EQ(problem_size(Benchmark::kLU, ProblemClass::kB).n, 102);
  // Section 4.1: BT loop runs 60 times for S, 200 for W and A.
  EXPECT_EQ(problem_size(Benchmark::kBT, ProblemClass::kS).iterations, 60);
  EXPECT_EQ(problem_size(Benchmark::kBT, ProblemClass::kW).iterations, 200);
  EXPECT_EQ(problem_size(Benchmark::kBT, ProblemClass::kA).iterations, 200);
}

TEST(ProblemTest, RankCountValidity) {
  // BT/SP need squares, LU powers of two (sections 4.1-4.3).
  EXPECT_TRUE(valid_rank_count(Benchmark::kBT, 1));
  EXPECT_TRUE(valid_rank_count(Benchmark::kBT, 9));
  EXPECT_TRUE(valid_rank_count(Benchmark::kSP, 25));
  EXPECT_FALSE(valid_rank_count(Benchmark::kBT, 8));
  EXPECT_TRUE(valid_rank_count(Benchmark::kLU, 32));
  EXPECT_FALSE(valid_rank_count(Benchmark::kLU, 24));
  EXPECT_FALSE(valid_rank_count(Benchmark::kLU, 0));
}

TEST(RandlcTest, KnownFirstValue) {
  // x1 = 5^13 * 314159265 mod 2^46; check against direct arithmetic.
  Randlc r;
  const double v = r.next();
  __extension__ using u128 = unsigned __int128;
  const u128 prod = static_cast<u128>(1220703125ULL) * 314159265ULL;
  const auto expect_state =
      static_cast<std::uint64_t>(prod & ((1ULL << 46) - 1));
  EXPECT_EQ(r.state(), expect_state);
  EXPECT_DOUBLE_EQ(
      v, static_cast<double>(expect_state) / static_cast<double>(1ULL << 46));
}

TEST(RandlcTest, ValuesInUnitInterval) {
  Randlc r(12345);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.next();
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RandlcTest, SkipMatchesSequentialDraws) {
  Randlc a, b;
  for (int i = 0; i < 137; ++i) (void)a.next();
  b.skip(137);
  EXPECT_EQ(a.state(), b.state());
  EXPECT_DOUBLE_EQ(a.next(), b.next());
}

TEST(SplitRangeTest, CoversWithoutOverlap) {
  for (int n : {7, 12, 33, 64, 101}) {
    for (int parts : {1, 2, 3, 4, 5, 8}) {
      int covered = 0;
      int prev_end = 0;
      for (int p = 0; p < parts; ++p) {
        const Range r = split_range(n, parts, p);
        EXPECT_EQ(r.begin, prev_end);
        EXPECT_GE(r.count, n / parts);
        EXPECT_LE(r.count, n / parts + 1);
        covered += r.count;
        prev_end = r.end();
      }
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(SquareDecompTest, LayoutAndNeighbours) {
  SquareDecomp d(9);
  EXPECT_EQ(d.q(), 3);
  const auto c = d.layout(4, 12, 12);  // centre rank
  EXPECT_EQ(c.py, 1);
  EXPECT_EQ(c.pz, 1);
  EXPECT_EQ(c.y_prev, 3);
  EXPECT_EQ(c.y_next, 5);
  EXPECT_EQ(c.z_prev, 1);
  EXPECT_EQ(c.z_next, 7);
  const auto corner = d.layout(0, 12, 12);
  EXPECT_EQ(corner.y_prev, -1);
  EXPECT_EQ(corner.z_prev, -1);
  EXPECT_EQ(corner.y_next, 1);
  EXPECT_EQ(corner.z_next, 3);
  EXPECT_THROW(SquareDecomp(8), std::invalid_argument);
}

TEST(PencilDecompTest, AlternateHalvingXFirst) {
  // Section 4.3: halve x first, then y, alternately.
  EXPECT_EQ(PencilDecomp(1).px(), 1);
  EXPECT_EQ(PencilDecomp(2).px(), 2);
  EXPECT_EQ(PencilDecomp(2).py(), 1);
  EXPECT_EQ(PencilDecomp(4).px(), 2);
  EXPECT_EQ(PencilDecomp(4).py(), 2);
  EXPECT_EQ(PencilDecomp(8).px(), 4);
  EXPECT_EQ(PencilDecomp(8).py(), 2);
  EXPECT_EQ(PencilDecomp(32).px(), 8);
  EXPECT_EQ(PencilDecomp(32).py(), 4);
  EXPECT_THROW(PencilDecomp(12), std::invalid_argument);
}

TEST(PencilDecompTest, NeighboursConsistent) {
  PencilDecomp d(8);  // 4 x 2
  const auto l = d.layout(5, 64, 64);  // pi=1, pj=1
  EXPECT_EQ(l.pi, 1);
  EXPECT_EQ(l.pj, 1);
  EXPECT_EQ(l.x_prev, 4);
  EXPECT_EQ(l.x_next, 6);
  EXPECT_EQ(l.y_prev, 1);
  EXPECT_EQ(l.y_next, -1);
}

TEST(Field5Test, IndexingAndGhosts) {
  Field5 f(4, 3, 2, 1);
  EXPECT_EQ(f.nx(), 4);
  EXPECT_EQ(f.interior_bytes(), 4u * 3u * 2u * 5u * sizeof(double));
  f.at(2, -1, -1, -1) = 7.5;
  EXPECT_DOUBLE_EQ(f.at(2, -1, -1, -1), 7.5);
  f.set(3, 2, 1, Vec5{1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(f.at(0, 3, 2, 1), 1.0);
  EXPECT_DOUBLE_EQ(f.at(4, 3, 2, 1), 5.0);
  f.add(3, 2, 1, Vec5{1, 1, 1, 1, 1});
  EXPECT_DOUBLE_EQ(f.at(0, 3, 2, 1), 2.0);
  const Vec5 v = f.get(3, 2, 1);
  EXPECT_DOUBLE_EQ(v[4], 6.0);
  f.fill(0.25);
  EXPECT_DOUBLE_EQ(f.at(0, 0, 0, 0), 0.25);
}

TEST(Field5Test, DistinctCellsDoNotAlias) {
  Field5 f(3, 3, 3, 1);
  double value = 0.0;
  for (int k = -1; k <= 3; ++k) {
    for (int j = -1; j <= 3; ++j) {
      for (int i = -1; i <= 3; ++i) {
        for (int c = 0; c < 5; ++c) f.at(c, i, j, k) = value++;
      }
    }
  }
  value = 0.0;
  for (int k = -1; k <= 3; ++k) {
    for (int j = -1; j <= 3; ++j) {
      for (int i = -1; i <= 3; ++i) {
        for (int c = 0; c < 5; ++c) {
          EXPECT_DOUBLE_EQ(f.at(c, i, j, k), value++);
        }
      }
    }
  }
}

TEST(StencilTest, OperatorAnnihilatesConstantsUpToCoupling) {
  // For a constant field the diffusion part vanishes; only eps*M*u remains.
  OperatorSpec op;
  const Block5 m = OperatorSpec::coupling();
  Field5 f(3, 3, 3, 1);
  const Vec5 ones{1, 1, 1, 1, 1};
  for (int k = -1; k <= 3; ++k) {
    for (int j = -1; j <= 3; ++j) {
      for (int i = -1; i <= 3; ++i) f.set(i, j, k, ones);
    }
  }
  const Vec5 r = apply_operator(f, 1, 1, 1, op, m);
  const Vec5 mu = matvec5(m, ones);
  for (std::size_t c = 0; c < 5; ++c) {
    EXPECT_NEAR(r[c], op.eps * mu[c], 1e-14);
  }
}

TEST(StencilTest, OperatorSecondDifferenceOfQuadratic) {
  // For u_c = x_idx^2 (grid-index space), 2u - u_- - u_+ = -2 per x pair.
  OperatorSpec op;
  op.eps = 0.0;  // isolate the stencil part
  const Block5 m = OperatorSpec::coupling();
  Field5 f(3, 3, 3, 1);
  for (int k = -1; k <= 3; ++k) {
    for (int j = -1; j <= 3; ++j) {
      for (int i = -1; i <= 3; ++i) {
        Vec5 v;
        for (std::size_t c = 0; c < 5; ++c) {
          v[c] = static_cast<double>(i) * static_cast<double>(i);
        }
        f.set(i, j, k, v);
      }
    }
  }
  const Vec5 r = apply_operator(f, 1, 1, 1, op, m);
  for (std::size_t c = 0; c < 5; ++c) EXPECT_NEAR(r[c], -2.0, 1e-12);
}

TEST(StencilTest, ExactSolutionComponentsDiffer) {
  const Vec5 v = exact_solution(0.3, 0.4, 0.5);
  std::set<double> distinct(v.begin(), v.end());
  EXPECT_EQ(distinct.size(), 5u);
}

TEST(StencilTest, GridCoordEndpoints) {
  EXPECT_DOUBLE_EQ(grid_coord(0, 11), 0.0);
  EXPECT_DOUBLE_EQ(grid_coord(10, 11), 1.0);
  EXPECT_DOUBLE_EQ(grid_coord(0, 1), 0.0);
}

}  // namespace
}  // namespace kcoup::npb
