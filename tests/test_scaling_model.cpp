// Tests for the analytical kernel scaling models and the dense solver.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "coupling/scaling_model.hpp"

namespace kcoup::coupling {
namespace {

TEST(SolveDenseTest, SolvesKnownSystem) {
  // [2 1; 1 3] x = [5; 10]  ->  x = [1; 3]
  std::vector<double> a{2, 1, 1, 3};
  std::vector<double> b{5, 10};
  ASSERT_TRUE(solve_dense(a, b, 2));
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(SolveDenseTest, PivotsOnZeroDiagonal) {
  std::vector<double> a{0, 1, 1, 0};
  std::vector<double> b{2, 3};
  ASSERT_TRUE(solve_dense(a, b, 2));
  EXPECT_NEAR(b[0], 3.0, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
}

TEST(SolveDenseTest, RejectsSingularAndBadSizes) {
  std::vector<double> a{1, 2, 2, 4};  // rank 1
  std::vector<double> b{1, 2};
  EXPECT_FALSE(solve_dense(a, b, 2));
  std::vector<double> short_a{1};
  std::vector<double> short_b{1, 2};
  EXPECT_FALSE(solve_dense(short_a, short_b, 2));
}

TEST(ScalingModelTest, RecoversExactLinearCombination) {
  const ScalingBasis basis = ScalingBasis::npb_default();
  // Ground truth: 2e-9 n^3/P + 5e-7 n^2/sqrt(P) + 1e-4 log2 P + 3e-3.
  auto truth = [](double n, double p) {
    return 2e-9 * n * n * n / p + 5e-7 * n * n / std::sqrt(p) +
           (p > 1 ? 1e-4 * std::log2(p) : 0.0) + 3e-3;
  };
  std::vector<ScalingSample> samples;
  for (double n : {12.0, 32.0, 64.0, 102.0}) {
    for (double p : {1.0, 4.0, 9.0, 16.0}) {
      samples.push_back({n, p, truth(n, p)});
    }
  }
  const KernelScalingModel m = KernelScalingModel::fit(basis, samples);
  EXPECT_LT(m.fit_rms_relative_error(), 1e-8);
  EXPECT_NEAR(m.coefficients()[0], 2e-9, 1e-13);
  EXPECT_NEAR(m.coefficients()[3], 3e-3, 1e-7);
  // Extrapolation to an unseen configuration.
  EXPECT_NEAR(m.evaluate(80, 25), truth(80, 25),
              1e-9 * std::fabs(truth(80, 25)) + 1e-12);
}

TEST(ScalingModelTest, FitToleratesNoise) {
  const ScalingBasis basis = ScalingBasis::npb_default();
  std::vector<ScalingSample> samples;
  int sign = 1;
  for (double n : {16.0, 32.0, 48.0, 64.0}) {
    for (double p : {1.0, 4.0, 16.0}) {
      const double clean = 1e-8 * n * n * n / p + 1e-3;
      samples.push_back({n, p, clean * (1.0 + 0.02 * sign)});
      sign = -sign;
    }
  }
  const KernelScalingModel m = KernelScalingModel::fit(basis, samples);
  EXPECT_LT(m.fit_rms_relative_error(), 0.05);
  const double pred = m.evaluate(64, 4);
  const double truth = 1e-8 * 64.0 * 64.0 * 64.0 / 4.0 + 1e-3;
  EXPECT_NEAR(pred, truth, 0.05 * truth);
}

TEST(ScalingModelTest, RejectsDegenerateInputs) {
  const ScalingBasis basis = ScalingBasis::npb_default();
  std::vector<ScalingSample> too_few{{12, 4, 1.0}};
  EXPECT_THROW((void)KernelScalingModel::fit(basis, too_few),
               std::invalid_argument);
  // Identical samples: singular normal equations.
  std::vector<ScalingSample> degenerate(6, ScalingSample{12, 4, 1.0});
  EXPECT_THROW((void)KernelScalingModel::fit(basis, degenerate),
               std::invalid_argument);
}

TEST(ScalingModelTest, FitOrConstantMatchesFitOnGoodData) {
  const ScalingBasis basis = ScalingBasis::npb_default();
  std::vector<ScalingSample> samples;
  for (double n : {12.0, 32.0, 64.0, 102.0}) {
    for (double p : {1.0, 4.0, 9.0, 16.0}) {
      samples.push_back({n, p, 2e-9 * n * n * n / p + 3e-3});
    }
  }
  const KernelScalingModel fitted = KernelScalingModel::fit(basis, samples);
  const KernelScalingModel safe =
      KernelScalingModel::fit_or_constant(basis, samples);
  EXPECT_FALSE(safe.degenerate());
  ASSERT_EQ(safe.coefficients().size(), fitted.coefficients().size());
  for (std::size_t i = 0; i < safe.coefficients().size(); ++i) {
    EXPECT_EQ(safe.coefficients()[i], fitted.coefficients()[i]);
  }
}

TEST(ScalingModelTest, FitOrConstantFlagsSingleSample) {
  const ScalingBasis basis = ScalingBasis::npb_default();
  std::vector<ScalingSample> one{{12, 4, 0.75}};
  const KernelScalingModel m = KernelScalingModel::fit_or_constant(basis, one);
  EXPECT_TRUE(m.degenerate());
  for (double c : m.coefficients()) EXPECT_TRUE(std::isfinite(c));
  EXPECT_DOUBLE_EQ(m.evaluate(12, 4), 0.75);
  EXPECT_DOUBLE_EQ(m.evaluate(64, 100), 0.75);  // constant everywhere
}

TEST(ScalingModelTest, FitOrConstantFlagsDuplicatePoints) {
  const ScalingBasis basis = ScalingBasis::npb_default();
  // Duplicate (n, P): singular normal equations that fit() rejects must
  // become a flagged constant, never NaN coefficients in a snapshot.
  std::vector<ScalingSample> degenerate(6, ScalingSample{12, 4, 0.5});
  const KernelScalingModel m =
      KernelScalingModel::fit_or_constant(basis, degenerate);
  EXPECT_TRUE(m.degenerate());
  for (double c : m.coefficients()) EXPECT_TRUE(std::isfinite(c));
  EXPECT_DOUBLE_EQ(m.evaluate(12, 4), 0.5);
}

TEST(ScalingModelTest, FitOrConstantRejectsEmptySamples) {
  const ScalingBasis basis = ScalingBasis::npb_default();
  EXPECT_THROW((void)KernelScalingModel::fit_or_constant(basis, {}),
               std::invalid_argument);
}

TEST(ScalingModelTest, ToStringListsBasisTerms) {
  const ScalingBasis basis = ScalingBasis::npb_default();
  std::vector<ScalingSample> samples;
  for (double n : {12.0, 24.0, 36.0, 48.0}) {
    for (double p : {1.0, 4.0}) {
      samples.push_back({n, p, 1e-9 * n * n * n / p + 1e-3});
    }
  }
  const KernelScalingModel m = KernelScalingModel::fit(basis, samples);
  const std::string s = m.to_string();
  EXPECT_NE(s.find("n^3/P"), std::string::npos);
  EXPECT_NE(s.find("log2(P)"), std::string::npos);
}

}  // namespace
}  // namespace kcoup::coupling
