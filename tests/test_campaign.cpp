// Tests for the campaign subsystem: the deduplicating planner, the
// concurrent executor's determinism against the serial path, retry and
// cache-hit behaviour, and the text spec parser.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <locale>
#include <memory>
#include <random>
#include <sstream>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/executor.hpp"
#include "campaign/planner.hpp"
#include "coupling/database.hpp"
#include "coupling/study.hpp"
#include "machine/config.hpp"
#include "npb/bt/bt_model.hpp"
#include "npb/sp/sp_model.hpp"

namespace kcoup::campaign {
namespace {

// --- Synthetic applications --------------------------------------------------

/// A self-contained loop application over deterministic callable kernels.
/// Kernel k costs (k+1) * scale seconds per invocation.
struct SyntheticApp {
  std::vector<std::unique_ptr<coupling::CallableKernel>> kernels;
  coupling::LoopApplication app;

  explicit SyntheticApp(std::size_t loop_size, double scale) {
    app.name = "synthetic";
    app.iterations = 3;
    for (std::size_t k = 0; k < loop_size; ++k) {
      kernels.push_back(std::make_unique<coupling::CallableKernel>(
          "k" + std::to_string(k),
          [k, scale] { return static_cast<double>(k + 1) * scale; }));
      app.loop.push_back(kernels.back().get());
    }
  }
};

/// Adapter so own_app() finds an `app()` accessor.
struct SyntheticOwner {
  SyntheticApp inner;
  SyntheticOwner(std::size_t loop_size, double scale)
      : inner(loop_size, scale) {}
  [[nodiscard]] const coupling::LoopApplication& app() const {
    return inner.app;
  }
};

AppFactory synthetic_factory(std::size_t loop_size, double scale) {
  return [loop_size, scale] {
    return own_app(std::make_unique<SyntheticOwner>(loop_size, scale));
  };
}

CampaignStudy synthetic_cell(const std::string& name, int ranks,
                             std::size_t loop_size, double scale) {
  CampaignStudy cell;
  cell.application = name;
  cell.config = "C";
  cell.ranks = ranks;
  cell.factory = synthetic_factory(loop_size, scale);
  return cell;
}

// --- Planner -----------------------------------------------------------------

TEST(PlannerTest, DeduplicatesSharedTasksAcrossChainLengths) {
  CampaignSpec spec;
  spec.studies.push_back(synthetic_cell("A", 1, 3, 1.0));
  spec.studies.push_back(synthetic_cell("B", 1, 3, 2.0));
  spec.chain_lengths = {2, 3};

  const CampaignPlan plan = plan_campaign(spec);
  // Naive: per cell and per chain length, 3 isolated + 3 chains + 1 actual.
  EXPECT_EQ(plan.tasks_requested, 2u * 2u * (3u + 3u + 1u));
  // Planned: per cell, 3 isolated + 1 actual once, plus 3 chains per length.
  EXPECT_EQ(plan.tasks.size(), 2u * (3u + 1u + 2u * 3u));
  EXPECT_EQ(plan.tasks_deduplicated,
            plan.tasks_requested - plan.tasks.size());
  EXPECT_EQ(plan.cache_hits, 0u);
}

TEST(PlannerTest, ChainLengthOneSharesIsolatedMeasurements) {
  CampaignSpec spec;
  spec.studies.push_back(synthetic_cell("A", 1, 4, 1.0));
  spec.chain_lengths = {1, 2};

  const CampaignPlan plan = plan_campaign(spec);
  // q=1 chains ARE the isolated measurements: 4 isolated + 1 actual + 4
  // q=2 chains.
  EXPECT_EQ(plan.tasks.size(), 4u + 1u + 4u);
  EXPECT_EQ(plan.tasks_requested, 2u * (4u + 4u + 1u));
}

TEST(PlannerTest, DuplicateCellsCollapseToOneMeasurementSet) {
  CampaignSpec spec;
  spec.studies.push_back(synthetic_cell("A", 1, 3, 1.0));
  spec.studies.push_back(synthetic_cell("A", 1, 3, 1.0));  // same triple
  spec.chain_lengths = {2};

  const CampaignPlan plan = plan_campaign(spec);
  EXPECT_EQ(plan.tasks.size(), 3u + 1u + 3u);
  EXPECT_EQ(plan.shapes.size(), 2u);
}

TEST(PlannerTest, DatabaseHitsBecomeCacheEntries) {
  CampaignSpec spec;
  spec.studies.push_back(synthetic_cell("A", 1, 3, 1.0));
  spec.chain_lengths = {2};

  coupling::CouplingDatabase db;
  db.record(coupling::CouplingRecord{coupling::CouplingKey{"A", "C", 1, 2, 1},
                                     4.25, 5.0});

  const CampaignPlan plan = plan_campaign(spec, &db);
  EXPECT_EQ(plan.cache_hits, 1u);
  EXPECT_EQ(plan.tasks.size(), 3u + 1u + 3u - 1u);
  const TaskKey key{"A", "C", 1, TaskKind::kChain, 1, 2};
  ASSERT_TRUE(plan.cached.count(key));
  EXPECT_DOUBLE_EQ(plan.cached.at(key), 4.25);

  // The cached chain time flows into the assembled result.
  const CampaignResult result = execute_plan(spec, plan, 1);
  EXPECT_DOUBLE_EQ(result.studies[0].by_length[0].chains[1].chain_time, 4.25);
  EXPECT_EQ(result.metrics.cache_hits, 1u);
}

TEST(PlannerTest, RejectsInvalidChainLengths) {
  CampaignSpec spec;
  spec.studies.push_back(synthetic_cell("A", 1, 3, 1.0));
  spec.chain_lengths = {4};
  EXPECT_THROW(plan_campaign(spec), std::invalid_argument);
  spec.chain_lengths = {0};
  EXPECT_THROW(plan_campaign(spec), std::invalid_argument);
}

TEST(PlannerTest, RejectsMissingFactory) {
  CampaignSpec spec;
  CampaignStudy cell;
  cell.application = "A";
  spec.studies.push_back(std::move(cell));
  EXPECT_THROW(plan_campaign(spec), std::invalid_argument);
}

// --- Executor determinism ----------------------------------------------------

void expect_identical(const coupling::StudyResult& a,
                      const coupling::StudyResult& b) {
  EXPECT_EQ(a.actual_s, b.actual_s);
  EXPECT_EQ(a.isolated_means, b.isolated_means);
  EXPECT_EQ(a.prologue_s, b.prologue_s);
  EXPECT_EQ(a.epilogue_s, b.epilogue_s);
  EXPECT_EQ(a.summation_s, b.summation_s);
  EXPECT_EQ(a.summation_error, b.summation_error);
  ASSERT_EQ(a.by_length.size(), b.by_length.size());
  for (std::size_t i = 0; i < a.by_length.size(); ++i) {
    const coupling::ChainLengthResult& x = a.by_length[i];
    const coupling::ChainLengthResult& y = b.by_length[i];
    EXPECT_EQ(x.length, y.length);
    EXPECT_EQ(x.coefficients, y.coefficients);
    EXPECT_EQ(x.prediction_s, y.prediction_s);
    EXPECT_EQ(x.relative_error, y.relative_error);
    ASSERT_EQ(x.chains.size(), y.chains.size());
    for (std::size_t c = 0; c < x.chains.size(); ++c) {
      EXPECT_EQ(x.chains[c].start, y.chains[c].start);
      EXPECT_EQ(x.chains[c].length, y.chains[c].length);
      EXPECT_EQ(x.chains[c].members, y.chains[c].members);
      EXPECT_EQ(x.chains[c].label, y.chains[c].label);
      EXPECT_EQ(x.chains[c].chain_time, y.chains[c].chain_time);
      EXPECT_EQ(x.chains[c].isolated_sum, y.chains[c].isolated_sum);
    }
  }
}

/// {BT, SP} x {1, 4} ranks x chain lengths {2, 3} on modeled class-S apps.
CampaignSpec npb_campaign_spec() {
  const machine::MachineConfig cfg = machine::ibm_sp_p2sc();
  CampaignSpec spec;
  spec.chain_lengths = {2, 3};
  for (int ranks : {1, 4}) {
    CampaignStudy bt;
    bt.application = "BT";
    bt.config = "S";
    bt.ranks = ranks;
    bt.factory = [ranks, cfg] {
      return own_app(
          npb::bt::make_modeled_bt(npb::ProblemClass::kS, ranks, cfg));
    };
    spec.studies.push_back(std::move(bt));

    CampaignStudy sp;
    sp.application = "SP";
    sp.config = "S";
    sp.ranks = ranks;
    sp.factory = [ranks, cfg] {
      return own_app(
          npb::sp::make_modeled_sp(npb::ProblemClass::kS, ranks, cfg));
    };
    spec.studies.push_back(std::move(sp));
  }
  return spec;
}

/// Serial reference: one run_study() per cell, exactly the pre-campaign
/// workflow.
std::vector<coupling::StudyResult> serial_reference(const CampaignSpec& spec) {
  std::vector<coupling::StudyResult> out;
  coupling::StudyOptions options;
  options.chain_lengths = spec.chain_lengths;
  options.measurement = spec.measurement;
  for (const CampaignStudy& cell : spec.studies) {
    const AppHandle handle = cell.factory();
    out.push_back(coupling::run_study(handle.app(), options));
  }
  return out;
}

TEST(CampaignMultiWorkerTest, ResultsBitIdenticalToSerialLoop) {
  const CampaignSpec spec = npb_campaign_spec();
  const std::vector<coupling::StudyResult> expected = serial_reference(spec);

  for (std::size_t workers : {1u, 2u, 8u}) {
    const CampaignResult result = run_campaign(spec, workers);
    ASSERT_EQ(result.studies.size(), expected.size()) << workers << " workers";
    for (std::size_t s = 0; s < expected.size(); ++s) {
      SCOPED_TRACE("workers=" + std::to_string(workers) +
                   " study=" + std::to_string(s));
      expect_identical(result.studies[s], expected[s]);
    }
    EXPECT_GT(result.metrics.tasks_deduplicated, 0u);
    EXPECT_EQ(result.metrics.cache_hits, 0u);
  }
}

TEST(CampaignMultiWorkerTest, DatabaseRoundTripKeepsResultsIdentical) {
  const CampaignSpec spec = npb_campaign_spec();
  coupling::CouplingDatabase db;

  const CampaignResult first = run_campaign(spec, 4, &db);
  EXPECT_GT(db.size(), 0u);

  // Second run serves every chain from the database and still assembles the
  // exact same results (the measurements are deterministic).
  const CampaignResult second = run_campaign(spec, 4, &db);
  EXPECT_GT(second.metrics.cache_hits, 0u);
  EXPECT_LT(second.metrics.tasks_executed, first.metrics.tasks_executed);
  ASSERT_EQ(first.studies.size(), second.studies.size());
  for (std::size_t s = 0; s < first.studies.size(); ++s) {
    SCOPED_TRACE("study=" + std::to_string(s));
    expect_identical(first.studies[s], second.studies[s]);
  }
}

TEST(CampaignMultiWorkerTest, PoolingOnOrOffIsBitIdenticalToSerial) {
  CampaignSpec spec = npb_campaign_spec();
  const std::vector<coupling::StudyResult> expected = serial_reference(spec);

  for (bool pooled : {true, false}) {
    spec.pool_handles = pooled;
    for (std::size_t workers : {1u, 4u}) {
      const CampaignResult result = run_campaign(spec, workers);
      ASSERT_EQ(result.studies.size(), expected.size());
      for (std::size_t s = 0; s < expected.size(); ++s) {
        SCOPED_TRACE("pooled=" + std::to_string(pooled) +
                     " workers=" + std::to_string(workers) +
                     " study=" + std::to_string(s));
        expect_identical(result.studies[s], expected[s]);
      }
    }
  }
}

TEST(CampaignMultiWorkerTest, HandlePoolMetricsAccountForEveryTask) {
  CampaignSpec spec;
  spec.chain_lengths = {2};
  spec.studies.push_back(synthetic_cell("A", 1, 4, 1.0));
  spec.studies.push_back(synthetic_cell("B", 1, 4, 2.0));

  // Pooled: every task either created a handle or reused one, and each
  // (worker, cell) pair creates at most one handle.
  for (std::size_t workers : {1u, 3u}) {
    const CampaignResult pooled = run_campaign(spec, workers);
    EXPECT_EQ(pooled.metrics.handles_created + pooled.metrics.handles_reused,
              pooled.metrics.tasks_executed);
    EXPECT_GE(pooled.metrics.handles_created, spec.studies.size());
    EXPECT_LE(pooled.metrics.handles_created,
              pooled.metrics.workers * spec.studies.size());
    EXPECT_GT(pooled.metrics.handles_reused, 0u);
  }

  // Pooling disabled: one fresh handle per task, nothing reused.
  spec.pool_handles = false;
  const CampaignResult fresh = run_campaign(spec, 3);
  EXPECT_EQ(fresh.metrics.handles_created, fresh.metrics.tasks_executed);
  EXPECT_EQ(fresh.metrics.handles_reused, 0u);
}

TEST(CampaignMultiWorkerTest, TaskTimeMetricsAreCoherent) {
  CampaignSpec spec;
  spec.chain_lengths = {2, 3};
  spec.studies.push_back(synthetic_cell("A", 1, 4, 1.0));
  const CampaignResult result = run_campaign(spec, 2);
  EXPECT_GE(result.metrics.task_min_s, 0.0);
  EXPECT_GE(result.metrics.task_mean_s, result.metrics.task_min_s);
  EXPECT_GE(result.metrics.task_max_s, result.metrics.task_mean_s);
}

// --- Executor error path -----------------------------------------------------

/// Counts live instances so tests can prove the executor's handle pools are
/// fully drained — success or error.
struct CountedOwner {
  inline static std::atomic<int> live{0};
  SyntheticApp inner;
  explicit CountedOwner(std::size_t loop_size) : inner(loop_size, 1.0) {
    ++live;
  }
  ~CountedOwner() { --live; }
  [[nodiscard]] const coupling::LoopApplication& app() const {
    return inner.app;
  }
};

TEST(CampaignErrorTest, ThrowingFactoryIsolatesEveryTaskAndLeaksNoHandles) {
  // The factory succeeds while the planner captures study shapes, then
  // throws for every executor acquisition.  The campaign must complete
  // anyway: every task exhausts the retry budget and is recorded as a
  // failure, every derived value is NaN, and nothing leaks.
  auto calls = std::make_shared<std::atomic<int>>(0);
  CampaignSpec spec;
  spec.chain_lengths = {2};
  spec.retry.max_attempts = 2;
  CampaignStudy cell;
  cell.application = "BOOM";
  cell.config = "C";
  cell.ranks = 1;
  cell.factory = [calls] {
    if (calls->fetch_add(1) >= 1) {
      throw std::runtime_error("factory exploded");
    }
    return own_app(std::make_unique<CountedOwner>(3));
  };
  spec.studies.push_back(std::move(cell));

  for (std::size_t workers : {1u, 4u}) {
    calls->store(0);
    const CampaignResult result = run_campaign(spec, workers);
    EXPECT_EQ(CountedOwner::live.load(), 0)
        << workers << " workers leaked handles";
    EXPECT_FALSE(result.complete());
    EXPECT_EQ(result.failures.size(), result.metrics.tasks_executed);
    EXPECT_EQ(result.metrics.tasks_failed, result.failures.size());
    for (const TaskFailure& f : result.failures) {
      EXPECT_EQ(f.attempts, 2) << to_string(f.key);
      EXPECT_EQ(f.what, "factory exploded");
    }
    EXPECT_TRUE(std::isnan(result.studies[0].actual_s));
    for (double m : result.studies[0].isolated_means) {
      EXPECT_TRUE(std::isnan(m));
    }
    EXPECT_EQ(result.missing[0].size(), result.metrics.tasks_executed);
  }
}

TEST(CampaignErrorTest, MidCampaignFactoryFailureKeepsGoodCellsIntact) {
  // Several cells; one cell's factory throws on every executor call.  The
  // good cells must finish with their exact fault-free values, the bad
  // cell's failures must be isolated to it, and every handle released.
  auto calls = std::make_shared<std::atomic<int>>(0);
  CampaignSpec spec;
  spec.chain_lengths = {2};
  for (int i = 0; i < 3; ++i) {
    CampaignStudy good;
    good.application = "GOOD" + std::to_string(i);
    good.config = "C";
    good.ranks = 1;
    good.factory = [] { return own_app(std::make_unique<CountedOwner>(3)); };
    spec.studies.push_back(std::move(good));
  }
  CampaignStudy bad;
  bad.application = "BAD";
  bad.config = "C";
  bad.ranks = 1;
  bad.factory = [calls] {
    if (calls->fetch_add(1) >= 1) {
      throw std::runtime_error("mid-campaign failure");
    }
    return own_app(std::make_unique<CountedOwner>(3));
  };
  spec.studies.push_back(std::move(bad));

  // Fault-free reference for the good cells only.
  CampaignSpec good_only = spec;
  good_only.studies.pop_back();
  const CampaignResult reference = run_campaign(good_only, 1);

  const CampaignResult result = run_campaign(spec, 4);
  EXPECT_EQ(CountedOwner::live.load(), 0);
  EXPECT_FALSE(result.complete());
  for (const TaskFailure& f : result.failures) {
    EXPECT_EQ(f.key.application, "BAD") << to_string(f.key);
  }
  for (std::size_t s = 0; s < 3; ++s) {
    SCOPED_TRACE("study=" + std::to_string(s));
    expect_identical(result.studies[s], reference.studies[s]);
    EXPECT_TRUE(result.missing[s].empty());
  }
  EXPECT_FALSE(result.missing[3].empty());
  EXPECT_TRUE(std::isnan(result.studies[3].actual_s));
}

TEST(CampaignErrorTest, RunStudyStillThrowsOnMeasurementFailure) {
  // run_study (the serial, single-cell path) has no use for partial
  // results: the campaign layer's isolation must not silently swallow its
  // errors.
  struct ThrowingKernelOwner {
    std::unique_ptr<coupling::CallableKernel> kernel;
    coupling::LoopApplication app;
    ThrowingKernelOwner() {
      app.name = "throwing";
      app.iterations = 1;
      kernel = std::make_unique<coupling::CallableKernel>(
          "boom", []() -> double { throw std::runtime_error("kernel died"); });
      app.loop.push_back(kernel.get());
    }
  };
  const ThrowingKernelOwner owner;
  EXPECT_THROW((void)coupling::run_study(owner.app, {}), std::runtime_error);
}

// --- Cost annotation ---------------------------------------------------------

TEST(PlannerTest, AnnotatesTasksWithExecutionCostEstimates) {
  CampaignSpec spec;
  spec.measurement.repetitions = 10;
  spec.measurement.warmup = 2;
  spec.chain_lengths = {2, 3};
  spec.studies.push_back(synthetic_cell("A", 1, 3, 1.0));

  const CampaignPlan plan = plan_campaign(spec);
  double cost_q1 = 0.0, cost_q3 = 0.0;
  for (const MeasurementTask& t : plan.tasks) {
    EXPECT_GT(t.cost, 0.0) << to_string(t.key);
    if (t.key.kind == TaskKind::kChain && t.key.length == 1) cost_q1 = t.cost;
    if (t.key.kind == TaskKind::kChain && t.key.length == 3) cost_q3 = t.cost;
  }
  // A q=3 chain traverses three kernels per repetition: 3x the q=1 cost.
  EXPECT_DOUBLE_EQ(cost_q1, 1.0 * (10 + 2));
  EXPECT_DOUBLE_EQ(cost_q3, 3.0 * (10 + 2));
}

TEST(CampaignMultiWorkerTest, SyntheticManyCellsStress) {
  CampaignSpec spec;
  spec.chain_lengths = {2, 3};
  for (int cell = 0; cell < 12; ++cell) {
    spec.studies.push_back(synthetic_cell("S" + std::to_string(cell % 5), 1, 4,
                                          1.0 + 0.25 * (cell % 5)));
  }
  const CampaignResult serial = run_campaign(spec, 1);
  const CampaignResult parallel = run_campaign(spec, 8);
  ASSERT_EQ(serial.studies.size(), parallel.studies.size());
  for (std::size_t s = 0; s < serial.studies.size(); ++s) {
    SCOPED_TRACE("study=" + std::to_string(s));
    expect_identical(serial.studies[s], parallel.studies[s]);
  }
}

// --- Retry -------------------------------------------------------------------

/// Kernels with an artificial noise schedule: every sample alternates
/// between 1 and 3 seconds, so the relative stddev is large until the
/// attempt budget runs out.
struct NoisyOwner {
  std::vector<std::unique_ptr<coupling::CallableKernel>> kernels;
  coupling::LoopApplication app;
  std::shared_ptr<int> tick = std::make_shared<int>(0);

  NoisyOwner() {
    app.name = "noisy";
    app.iterations = 1;
    auto tick_ptr = tick;
    kernels.push_back(std::make_unique<coupling::CallableKernel>(
        "noisy", [tick_ptr] { return (++*tick_ptr % 2 == 0) ? 3.0 : 1.0; }));
    app.loop.push_back(kernels.back().get());
  }
};

TEST(CampaignRetryTest, NoisyMeasurementsAreRetriedUpToTheBudget) {
  CampaignSpec spec;
  spec.chain_lengths = {};
  spec.measurement.repetitions = 4;
  spec.measurement.warmup = 0;
  spec.retry.max_relative_stddev = 0.10;
  spec.retry.max_attempts = 3;

  CampaignStudy cell;
  cell.application = "NOISY";
  cell.config = "C";
  cell.ranks = 1;
  cell.factory = [] {
    auto owner = std::make_unique<NoisyOwner>();
    const coupling::LoopApplication* app = &owner->app;
    return AppHandle(std::shared_ptr<void>(std::move(owner)), app);
  };
  spec.studies.push_back(std::move(cell));

  const CampaignResult result = run_campaign(spec, 1);
  // The isolated task alternates 1/3: rsd stays ~0.57 every attempt, so it
  // retries max_attempts - 1 = 2 extra times.  The actual task has one
  // sample and never retries.
  EXPECT_EQ(result.metrics.tasks_retried, 2u);
}

TEST(CampaignRetryTest, RetriesMergeSamplesInsteadOfDiscardingThem) {
  // The kernel's samples are scripted per instance: the actual run consumes
  // one invocation (9), the isolated measurement's first attempt sees {1, 3}
  // (rsd 0.71 -> retry), later attempts see constant 4s.  Merging keeps the
  // early samples: mean over {1,3,4,4,4,4} = 10/3.  The old
  // keep-only-the-last-attempt behaviour would report 4.0.
  struct ScriptedOwner {
    std::vector<double> script{9.0, 1.0, 3.0, 4.0, 4.0, 4.0, 4.0};
    std::size_t calls = 0;
    std::unique_ptr<coupling::CallableKernel> kernel;
    coupling::LoopApplication app;
    ScriptedOwner() {
      app.name = "scripted";
      app.iterations = 1;
      kernel = std::make_unique<coupling::CallableKernel>("scripted", [this] {
        const double v = calls < script.size() ? script[calls] : 4.0;
        ++calls;
        return v;
      });
      app.loop.push_back(kernel.get());
    }
    [[nodiscard]] const coupling::LoopApplication& a() const { return app; }
  };

  CampaignSpec spec;
  spec.chain_lengths = {};
  spec.measurement.repetitions = 2;
  spec.measurement.warmup = 0;
  spec.retry.max_relative_stddev = 0.10;
  spec.retry.max_attempts = 3;

  CampaignStudy cell;
  cell.application = "SCRIPTED";
  cell.config = "C";
  cell.ranks = 1;
  cell.factory = [] {
    auto owner = std::make_unique<ScriptedOwner>();
    const coupling::LoopApplication* app = &owner->app;
    return AppHandle(std::shared_ptr<void>(std::move(owner)), app);
  };
  spec.studies.push_back(std::move(cell));

  const CampaignResult result = run_campaign(spec, 1);
  EXPECT_EQ(result.metrics.tasks_retried, 2u);
  EXPECT_DOUBLE_EQ(result.studies[0].isolated_means[0], 10.0 / 3.0);
}

TEST(CampaignRetryTest, DefaultPolicyNeverRetries) {
  CampaignSpec spec;
  spec.chain_lengths = {2};
  spec.studies.push_back(synthetic_cell("A", 1, 3, 1.0));
  const CampaignResult result = run_campaign(spec, 1);
  EXPECT_EQ(result.metrics.tasks_retried, 0u);
}

// --- Text spec ---------------------------------------------------------------

TEST(CampaignTextSpecTest, ParsesFullSpec) {
  std::istringstream in(
      "# BT/SP sweep\n"
      "apps = bt, sp\n"
      "classes = S,W\n"
      "procs = 4,9,16\n"
      "chains = 2,3\n"
      "repetitions = 10\n"
      "warmup = 1\n"
      "workers = 8\n"
      "epilogue_repetitions = 7\n"
      "pool = off\n"
      "machine = generic-smp\n"
      "retry_rsd = 0.25\n"
      "retry_max = 4\n");
  const CampaignTextSpec spec = parse_campaign_text(in);
  EXPECT_EQ(spec.applications, (std::vector<std::string>{"bt", "sp"}));
  EXPECT_EQ(spec.configs, (std::vector<std::string>{"S", "W"}));
  EXPECT_EQ(spec.ranks, (std::vector<int>{4, 9, 16}));
  EXPECT_EQ(spec.chain_lengths, (std::vector<std::size_t>{2, 3}));
  EXPECT_EQ(spec.measurement.repetitions, 10);
  EXPECT_EQ(spec.measurement.warmup, 1);
  EXPECT_EQ(spec.measurement.epilogue_repetitions, 7);
  EXPECT_FALSE(spec.pool_handles);
  EXPECT_EQ(spec.workers, 8u);
  EXPECT_EQ(spec.machine, "generic-smp");
  EXPECT_DOUBLE_EQ(spec.retry.max_relative_stddev, 0.25);
  EXPECT_EQ(spec.retry.max_attempts, 4);
}

TEST(CampaignTextSpecTest, DefaultsAndMinimalSpec) {
  std::istringstream in("apps=bt\nclasses=S\nprocs=4\n");
  const CampaignTextSpec spec = parse_campaign_text(in);
  EXPECT_EQ(spec.chain_lengths, (std::vector<std::size_t>{2}));
  EXPECT_EQ(spec.measurement.repetitions, 50);
  EXPECT_EQ(spec.measurement.epilogue_repetitions, 3);
  EXPECT_TRUE(spec.pool_handles);
  EXPECT_EQ(spec.workers, 0u);
  EXPECT_EQ(spec.machine, "ibm-sp");
}

TEST(CampaignTextSpecTest, RejectsNonsenseValuesNamingTheOffendingKey) {
  const auto expect_rejects = [](const std::string& line,
                                 const std::string& key) {
    std::istringstream in("apps=bt\nclasses=S\nprocs=4\n" + line + "\n");
    try {
      (void)parse_campaign_text(in);
      FAIL() << "accepted '" << line << "'";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("'" + key + "'"),
                std::string::npos)
          << "error for '" << line << "' does not name '" << key
          << "': " << e.what();
    }
  };
  expect_rejects("repetitions = 0", "repetitions");
  expect_rejects("repetitions = -3", "repetitions");
  expect_rejects("warmup = -1", "warmup");
  expect_rejects("retry_max = 0", "retry_max");
  expect_rejects("retry_max = -2", "retry_max");
  expect_rejects("retry_rsd = -0.5", "retry_rsd");
  expect_rejects("epilogue_repetitions = 0", "epilogue_repetitions");
  expect_rejects("workers = -1", "workers");
  expect_rejects("chains = 2,0", "chains");

  // procs entries must be positive too (a 0-rank cell is meaningless).
  std::istringstream in("apps=bt\nclasses=S\nprocs=4,0\n");
  try {
    (void)parse_campaign_text(in);
    FAIL() << "accepted procs=4,0";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("'procs'"), std::string::npos)
        << e.what();
  }
}

TEST(CampaignTextSpecTest, ToTextRoundTripsEveryField) {
  // Property test: serialize an arbitrary spec and parse it back; every
  // field must survive exactly, including awkward doubles.
  std::mt19937 rng(20260807u);
  const std::vector<std::string> app_pool{"bt", "sp", "lu"};
  const std::vector<std::string> class_pool{"S", "W", "A", "B"};
  const std::vector<std::string> machine_pool{"ibm-sp", "generic-smp"};
  auto pick_subset = [&rng](const std::vector<std::string>& pool) {
    std::vector<std::string> out;
    for (const std::string& s : pool) {
      if (rng() % 2 == 0) out.push_back(s);
    }
    if (out.empty()) out.push_back(pool.front());
    return out;
  };

  for (int trial = 0; trial < 200; ++trial) {
    SCOPED_TRACE("trial=" + std::to_string(trial));
    CampaignTextSpec spec;
    spec.applications = pick_subset(app_pool);
    spec.configs = pick_subset(class_pool);
    spec.ranks.clear();
    for (int i = 0; i < 1 + static_cast<int>(rng() % 4); ++i) {
      spec.ranks.push_back(1 + static_cast<int>(rng() % 64));
    }
    spec.chain_lengths.clear();
    for (int i = 0; i < 1 + static_cast<int>(rng() % 3); ++i) {
      spec.chain_lengths.push_back(1 + rng() % 6);
    }
    spec.measurement.repetitions = 1 + static_cast<int>(rng() % 100);
    spec.measurement.warmup = static_cast<int>(rng() % 10);
    spec.measurement.epilogue_repetitions = 1 + static_cast<int>(rng() % 5);
    spec.workers = rng() % 16;
    spec.pool_handles = rng() % 2 == 0;
    spec.machine = machine_pool[rng() % machine_pool.size()];
    // Awkward doubles: tiny, huge, and full-precision irrational-ish.
    const double rsd_pool[] = {0.0, 1e-300, 0.1, 1.0 / 3.0, 2.5e17,
                               0.07500000000000001};
    spec.retry.max_relative_stddev = rsd_pool[rng() % 6];
    spec.retry.max_attempts = 1 + static_cast<int>(rng() % 9);

    std::istringstream in(to_text(spec));
    const CampaignTextSpec parsed = parse_campaign_text(in);
    EXPECT_EQ(parsed.applications, spec.applications);
    EXPECT_EQ(parsed.configs, spec.configs);
    EXPECT_EQ(parsed.ranks, spec.ranks);
    EXPECT_EQ(parsed.chain_lengths, spec.chain_lengths);
    EXPECT_EQ(parsed.measurement.repetitions, spec.measurement.repetitions);
    EXPECT_EQ(parsed.measurement.warmup, spec.measurement.warmup);
    EXPECT_EQ(parsed.measurement.epilogue_repetitions,
              spec.measurement.epilogue_repetitions);
    EXPECT_EQ(parsed.workers, spec.workers);
    EXPECT_EQ(parsed.pool_handles, spec.pool_handles);
    EXPECT_EQ(parsed.machine, spec.machine);
    EXPECT_EQ(parsed.retry.max_relative_stddev,
              spec.retry.max_relative_stddev);
    EXPECT_EQ(parsed.retry.max_attempts, spec.retry.max_attempts);
  }
}

TEST(CampaignTextSpecTest, RejectsMalformedInput) {
  {
    std::istringstream in("apps=bt\nclasses=S\n");  // missing procs
    EXPECT_THROW(parse_campaign_text(in), std::runtime_error);
  }
  {
    std::istringstream in("apps=bt\nclasses=S\nprocs=four\n");
    EXPECT_THROW(parse_campaign_text(in), std::runtime_error);
  }
  {
    std::istringstream in("apps=bt\nclasses=S\nprocs=4\nbogus=1\n");
    EXPECT_THROW(parse_campaign_text(in), std::runtime_error);
  }
  {
    std::istringstream in("apps=bt\nclasses=S\nprocs=4\nchains=0\n");
    EXPECT_THROW(parse_campaign_text(in), std::runtime_error);
  }
  {
    std::istringstream in("just some words\n");
    EXPECT_THROW(parse_campaign_text(in), std::runtime_error);
  }
  {
    std::istringstream in("apps=bt\nclasses=S\nprocs=4\npool=maybe\n");
    EXPECT_THROW(parse_campaign_text(in), std::runtime_error);
  }
  {
    std::istringstream in(
        "apps=bt\nclasses=S\nprocs=4\nepilogue_repetitions=0\n");
    EXPECT_THROW(parse_campaign_text(in), std::runtime_error);
  }
}

// --- Metrics rendering -------------------------------------------------------

TEST(CampaignMetricsTest, ExportsTableCsvAndJsonl) {
  CampaignSpec spec;
  spec.chain_lengths = {2, 3};
  spec.studies.push_back(synthetic_cell("A", 1, 3, 1.0));
  const CampaignResult result = run_campaign(spec, 2);

  const std::string table = result.metrics.to_table().to_string();
  EXPECT_NE(table.find("tasks deduplicated"), std::string::npos);

  const std::string csv = result.metrics.to_csv();
  EXPECT_NE(csv.find("tasks_deduplicated"), std::string::npos);
  EXPECT_NE(csv.find("handles_created"), std::string::npos);
  EXPECT_NE(csv.find("task_mean_s"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);

  const std::string jsonl = result.metrics.to_jsonl();
  EXPECT_EQ(jsonl.front(), '{');
  EXPECT_NE(jsonl.find("\"tasks_planned\":"), std::string::npos);
  EXPECT_NE(jsonl.find("\"handles_reused\":"), std::string::npos);
  EXPECT_NE(jsonl.find("\"task_max_s\":"), std::string::npos);
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 1);
}

/// Metrics with binary-exact doubles so the expected text is unambiguous.
CampaignMetrics golden_metrics() {
  CampaignMetrics m;
  m.studies = 4;
  m.workers = 8;
  m.tasks_requested = 100;
  m.tasks_planned = 42;
  m.tasks_deduplicated = 50;
  m.cache_hits = 5;
  m.journal_hits = 3;
  m.tasks_executed = 42;
  m.tasks_retried = 2;
  m.tasks_failed = 1;
  m.handles_created = 9;
  m.handles_reused = 33;
  m.plan_s = 0.5;
  m.measure_s = 1.25;
  m.assemble_s = 0.125;
  m.wall_s = 2.0;
  m.task_min_s = 0.03125;
  m.task_max_s = 0.25;
  m.task_mean_s = 0.0625;
  return m;
}

TEST(CampaignMetricsTest, CsvGoldenOutput) {
  const std::string expected =
      "studies,workers,tasks_requested,tasks_planned,tasks_deduplicated,"
      "cache_hits,journal_hits,tasks_executed,tasks_retried,tasks_failed,"
      "handles_created,handles_reused,plan_s,measure_s,assemble_s,wall_s,"
      "task_min_s,task_max_s,task_mean_s\n"
      "4,8,100,42,50,5,3,42,2,1,9,33,0.5,1.25,0.125,2,0.03125,0.25,0.0625\n";
  EXPECT_EQ(golden_metrics().to_csv(), expected);
}

TEST(CampaignMetricsTest, JsonlGoldenOutput) {
  const std::string expected =
      "{\"studies\":4,\"workers\":8,\"tasks_requested\":100,"
      "\"tasks_planned\":42,\"tasks_deduplicated\":50,\"cache_hits\":5,"
      "\"journal_hits\":3,\"tasks_executed\":42,\"tasks_retried\":2,"
      "\"tasks_failed\":1,\"handles_created\":9,\"handles_reused\":33,"
      "\"plan_s\":0.5,\"measure_s\":1.25,\"assemble_s\":0.125,\"wall_s\":2,"
      "\"task_min_s\":0.03125,\"task_max_s\":0.25,\"task_mean_s\":0.0625}\n";
  EXPECT_EQ(golden_metrics().to_jsonl(), expected);
}

TEST(CampaignMetricsTest, ExportsIgnoreTheGlobalLocale) {
  // A locale whose decimal point is ',' would corrupt both the CSV (extra
  // separators) and the JSON (invalid numbers) if the exports used it.
  struct CommaPoint : std::numpunct<char> {
    char do_decimal_point() const override { return ','; }
    char do_thousands_sep() const override { return '.'; }
    std::string do_grouping() const override { return "\3"; }
  };
  const std::locale before = std::locale::global(
      std::locale(std::locale::classic(), new CommaPoint));
  const std::string csv = golden_metrics().to_csv();
  const std::string jsonl = golden_metrics().to_jsonl();
  std::locale::global(before);

  EXPECT_NE(csv.find("0.03125"), std::string::npos) << csv;
  EXPECT_EQ(csv.find("0,03125"), std::string::npos) << csv;
  EXPECT_NE(jsonl.find("\"task_min_s\":0.03125"), std::string::npos) << jsonl;
  // Header + one row, each with exactly 19 fields.
  const auto count_fields = [](const std::string& line) {
    return 1 + std::count(line.begin(), line.end(), ',');
  };
  const std::size_t nl = csv.find('\n');
  EXPECT_EQ(count_fields(csv.substr(0, nl)), 19);
  EXPECT_EQ(count_fields(csv.substr(nl + 1, csv.size() - nl - 2)), 19);
}

TEST(CampaignMetricsTest, TableIncludesFailureAndJournalRows) {
  const std::string table = golden_metrics().to_table().to_string();
  EXPECT_NE(table.find("tasks failed"), std::string::npos);
  EXPECT_NE(table.find("journal hits"), std::string::npos);
}

}  // namespace
}  // namespace kcoup::campaign
