// Unit tests for the src/model/ subsystem: the candidate-term registry,
// leave-one-out cross-validated model selection with its deterministic
// tie-break, piecewise/changepoint fitting, and coupling-transition
// detection.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "coupling/database.hpp"
#include "model/piecewise.hpp"
#include "model/select.hpp"
#include "model/terms.hpp"
#include "model/transitions.hpp"

namespace kcoup::model {
namespace {

// --- Term registry ----------------------------------------------------------

TEST(TermRegistryTest, IdsAreStableAndDense) {
  const auto registry = term_registry();
  ASSERT_GE(registry.size(), 15u);
  for (std::size_t i = 0; i < registry.size(); ++i) {
    EXPECT_EQ(registry[i].id, i);
    EXPECT_EQ(&term_at(static_cast<std::uint32_t>(i)), &registry[i]);
  }
  // Pinned names: these ids are a serialization contract — renumbering or
  // renaming any of them breaks every packed snapshot in the wild.
  EXPECT_STREQ(term_at(0).name, "1");
  EXPECT_STREQ(term_at(1).name, "log2(P)");
  EXPECT_STREQ(term_at(4).name, "1/P");
  EXPECT_STREQ(term_at(12).name, "n^3/P");
  EXPECT_EQ(kConstantTermId, 0u);
  EXPECT_THROW((void)term_at(10000), std::out_of_range);
}

TEST(TermRegistryTest, EvaluationsMatchTheirNames) {
  EXPECT_DOUBLE_EQ(term_at(0).eval(7, 9), 1.0);
  EXPECT_DOUBLE_EQ(term_at(1).eval(7, 8), 3.0);
  EXPECT_DOUBLE_EQ(term_at(1).eval(7, 1), 0.0);  // log2 guard at P = 1
  EXPECT_DOUBLE_EQ(term_at(4).eval(7, 4), 0.25);
  EXPECT_DOUBLE_EQ(term_at(12).eval(2, 4), 2.0);
}

// --- Model selection --------------------------------------------------------

std::vector<ModelSample> grid_samples(double (*truth)(double, double)) {
  std::vector<ModelSample> samples;
  for (double n : {12.0, 24.0, 36.0, 64.0}) {
    for (double p : {1.0, 2.0, 4.0, 8.0, 16.0}) {
      samples.push_back({n, p, truth(n, p)});
    }
  }
  return samples;
}

TEST(SelectModelTest, RecoversExactSingleTermForm) {
  const auto samples =
      grid_samples([](double n, double p) { return 2e-9 * n * n * n / p; });
  const SelectedModel m = select_model(samples);
  ASSERT_EQ(m.terms.size(), 1u);
  EXPECT_EQ(m.terms[0].id, 12u);  // n^3/P
  EXPECT_NEAR(m.terms[0].coefficient, 2e-9, 1e-15);
  EXPECT_EQ(m.cv_rmse, 0.0);  // exact fits clamp to exactly zero
  EXPECT_FALSE(m.degenerate);
  EXPECT_EQ(m.term_names(), "n^3/P");
}

TEST(SelectModelTest, RecoversExactTwoTermForm) {
  const auto samples = grid_samples(
      [](double n, double p) { return 3e-3 + 2e-9 * n * n * n / p; });
  const SelectedModel m = select_model(samples);
  ASSERT_EQ(m.terms.size(), 2u);
  EXPECT_EQ(m.terms[0].id, 0u);
  EXPECT_EQ(m.terms[1].id, 12u);
  EXPECT_NEAR(m.terms[0].coefficient, 3e-3, 1e-9);
  EXPECT_NEAR(m.terms[1].coefficient, 2e-9, 1e-15);
  EXPECT_EQ(m.term_names(), "1+n^3/P");
  // Extrapolation to an unseen configuration is exact for an exact form.
  const double truth = 3e-3 + 2e-9 * 80.0 * 80.0 * 80.0 / 64.0;
  EXPECT_NEAR(m.evaluate(80, 64), truth, 1e-9 * truth);
}

TEST(SelectModelTest, DeterministicAcrossRepeats) {
  const auto samples = grid_samples([](double n, double p) {
    return 1e-3 + 5e-7 * n * n / std::sqrt(p) +
           (p > 1 ? 2e-4 * std::log2(p) : 0.0);
  });
  const SelectedModel a = select_model(samples);
  const SelectedModel b = select_model(samples);
  ASSERT_EQ(a.terms.size(), b.terms.size());
  for (std::size_t i = 0; i < a.terms.size(); ++i) {
    EXPECT_EQ(a.terms[i].id, b.terms[i].id);
    EXPECT_EQ(a.terms[i].coefficient, b.terms[i].coefficient);
  }
  EXPECT_EQ(a.cv_rmse, b.cv_rmse);
}

TEST(SelectModelTest, TieBreakPrefersLowestTermIds) {
  // n fixed: 1/P (id 4), n/P (id 10), n^2/P (id 11) and n^3/P (id 12) are
  // all proportional, and each fits y = c/P exactly.  The tie must resolve
  // to the lexicographically smallest id set — {4} — not to whichever
  // candidate last-ulp noise happens to favor.
  std::vector<ModelSample> samples;
  for (double p : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    samples.push_back({12.0, p, 0.02 / p});
  }
  const SelectedModel m = select_model(samples);
  ASSERT_EQ(m.terms.size(), 1u);
  EXPECT_EQ(m.terms[0].id, 4u);
  EXPECT_EQ(m.cv_rmse, 0.0);
}

TEST(SelectModelTest, DegenerateInputsYieldFlaggedConstant) {
  // One sample, and many copies of one point: no spread to fit against.
  for (const std::size_t copies : {std::size_t{1}, std::size_t{6}}) {
    const std::vector<ModelSample> samples(copies,
                                           ModelSample{12.0, 4.0, 0.5});
    const SelectedModel m = select_model(samples);
    EXPECT_TRUE(m.degenerate);
    ASSERT_EQ(m.terms.size(), 1u);
    EXPECT_EQ(m.terms[0].id, kConstantTermId);
    EXPECT_DOUBLE_EQ(m.terms[0].coefficient, 0.5);
    EXPECT_TRUE(std::isnan(m.cv_rmse));
    EXPECT_TRUE(std::isfinite(m.evaluate(12.0, 9.0)));
  }
}

TEST(SelectModelTest, CrossValidationRejectsOverfitOnNoisyData) {
  // Deterministic alternating "noise" on a one-term truth: the winner must
  // still evaluate close to the truth away from the samples, rather than
  // contorting through the noise.
  std::vector<ModelSample> samples;
  int sign = 1;
  for (double n : {12.0, 24.0, 36.0, 64.0}) {
    for (double p : {1.0, 2.0, 4.0, 8.0, 16.0}) {
      const double clean = 1e-3 + 1e-8 * n * n * n / p;
      samples.push_back({n, p, clean * (1.0 + 0.02 * sign)});
      sign = -sign;
    }
  }
  const SelectedModel m = select_model(samples);
  EXPECT_FALSE(m.degenerate);
  EXPECT_LT(m.cv_rmse, 0.05);
  const double truth = 1e-3 + 1e-8 * 48.0 * 48.0 * 48.0 / 32.0;
  EXPECT_NEAR(m.evaluate(48, 32), truth, 0.1 * truth);
}

// --- Piecewise fitting ------------------------------------------------------

TEST(PiecewiseTest, SingleRegimeStaysUnsplit) {
  const auto samples =
      grid_samples([](double n, double p) { return 1e-8 * n * n * n / p; });
  const PiecewiseModel pw = fit_piecewise(samples);
  EXPECT_TRUE(pw.breakpoints.empty());
  ASSERT_EQ(pw.segments.size(), 1u);
  EXPECT_EQ(pw.segments[0].model.term_names(), "n^3/P");
}

TEST(PiecewiseTest, LocatesKnownBreakpointWithinOneGridStep) {
  // Two regimes with a transition between P = 8 and P = 16: volume-bound
  // scaling below, latency-dominated (constant + log) above.
  std::vector<ModelSample> samples;
  for (double n : {12.0, 24.0, 36.0}) {
    for (double p : {1.0, 2.0, 4.0, 8.0}) {
      samples.push_back({n, p, 1e-6 * n * n * n / p});
    }
    for (double p : {16.0, 32.0, 64.0, 128.0}) {
      samples.push_back({n, p, 2e-3 + 1e-4 * std::log2(p)});
    }
  }
  const PiecewiseModel pw = fit_piecewise(samples);
  ASSERT_EQ(pw.breakpoints.size(), 1u);
  ASSERT_EQ(pw.segments.size(), 2u);
  // The boundary must land between the straddling grid points.
  EXPECT_GT(pw.breakpoints[0], 8.0);
  EXPECT_LT(pw.breakpoints[0], 16.0);
  EXPECT_EQ(pw.segments[0].p_max, 8.0);
  EXPECT_EQ(pw.segments[1].p_min, 16.0);
  // Each side recovers its own exact form and routes evaluation by P.
  EXPECT_EQ(pw.segments[0].model.term_names(), "n^3/P");
  EXPECT_EQ(pw.segments[1].model.term_names(), "1+log2(P)");
  const double low = 1e-6 * 24.0 * 24.0 * 24.0 / 4.0;
  EXPECT_NEAR(pw.evaluate(24, 4), low, 1e-9 * low);
  const double high = 2e-3 + 1e-4 * std::log2(256.0);  // extrapolated
  EXPECT_NEAR(pw.evaluate(24, 256), high, 1e-6 * high);
}

TEST(PiecewiseTest, DeterministicAcrossRepeats) {
  std::vector<ModelSample> samples;
  for (double p : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0}) {
    const double base = p <= 8.0 ? 1e-2 / p : 5e-3;
    for (double n : {12.0, 24.0}) samples.push_back({n, p, base});
  }
  const PiecewiseModel a = fit_piecewise(samples);
  const PiecewiseModel b = fit_piecewise(samples);
  EXPECT_EQ(a.breakpoints, b.breakpoints);
  ASSERT_EQ(a.segments.size(), b.segments.size());
  for (std::size_t i = 0; i < a.segments.size(); ++i) {
    EXPECT_EQ(a.segments[i].model.term_names(),
              b.segments[i].model.term_names());
  }
}

TEST(PiecewiseTest, EmptyAndTinyInputsDegradeToFlaggedConstant) {
  const PiecewiseModel empty = fit_piecewise({});
  ASSERT_EQ(empty.segments.size(), 1u);
  EXPECT_TRUE(empty.segments[0].model.degenerate);
  EXPECT_TRUE(std::isfinite(empty.evaluate(12, 4)));

  const std::vector<ModelSample> one{{12.0, 4.0, 0.25}};
  const PiecewiseModel tiny = fit_piecewise(one);
  ASSERT_EQ(tiny.segments.size(), 1u);
  EXPECT_TRUE(tiny.segments[0].model.degenerate);
  EXPECT_DOUBLE_EQ(tiny.evaluate(12, 64), 0.25);
}

// --- Changepoint / transition detection -------------------------------------

TEST(ChangepointTest, FindsSingleLevelShiftWithinOneGridStep) {
  // Coupling-like series: ~1.02 through P = 8, ~1.35 from P = 16 on.
  std::vector<SeriesPoint> series{{1, 1.02},  {2, 1.021}, {4, 1.019},
                                  {8, 1.02},  {16, 1.35}, {32, 1.351},
                                  {64, 1.349}};
  const auto cps = detect_changepoints(series);
  ASSERT_EQ(cps.size(), 1u);
  EXPECT_DOUBLE_EQ(cps[0].x_lo, 8.0);
  EXPECT_DOUBLE_EQ(cps[0].x_hi, 16.0);
  EXPECT_DOUBLE_EQ(cps[0].boundary, 12.0);
  EXPECT_NEAR(cps[0].before, 1.02, 1e-3);
  EXPECT_NEAR(cps[0].after, 1.35, 1e-3);
}

TEST(ChangepointTest, FlatAndJitterySeriessYieldNoTransitions) {
  std::vector<SeriesPoint> flat;
  for (double p : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) flat.push_back({p, 1.1});
  EXPECT_TRUE(detect_changepoints(flat).empty());

  // Jitter well below the min_jump threshold must not be reported.
  std::vector<SeriesPoint> jitter;
  int sign = 1;
  for (double p : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    jitter.push_back({p, 1.1 * (1.0 + 0.001 * sign)});
    sign = -sign;
  }
  EXPECT_TRUE(detect_changepoints(jitter).empty());
}

TEST(ChangepointTest, FindsTwoTransitions) {
  std::vector<SeriesPoint> series{{1, 1.0},  {2, 1.0},   {4, 1.2},
                                  {8, 1.2},  {16, 1.5},  {32, 1.5}};
  const auto cps = detect_changepoints(series);
  ASSERT_EQ(cps.size(), 2u);
  EXPECT_DOUBLE_EQ(cps[0].boundary, 3.0);
  EXPECT_DOUBLE_EQ(cps[1].boundary, 12.0);
}

TEST(TransitionTest, DetectsCouplingTransitionFromDatabaseRecords) {
  coupling::CouplingDatabase db;
  // One (app, config, q=2, start=0) series over ranks with a known level
  // shift between P = 8 and P = 16; isolated_sum fixed at 1 so coupling ==
  // chain_time.
  for (int p : {1, 2, 4, 8}) {
    db.record({{"app", "S", p, 2, 0}, 1.02, 1.0});
  }
  for (int p : {16, 32, 64}) {
    db.record({{"app", "S", p, 2, 0}, 1.35, 1.0});
  }
  // A flat series for another chain start: must produce nothing.
  for (int p : {1, 2, 4, 8, 16, 32}) {
    db.record({{"app", "S", p, 2, 1}, 1.10, 1.0});
  }
  const auto transitions = detect_coupling_transitions(db);
  ASSERT_EQ(transitions.size(), 1u);
  const CouplingTransition& t = transitions[0];
  EXPECT_EQ(t.application, "app");
  EXPECT_EQ(t.config, "S");
  EXPECT_EQ(t.chain_length, 2u);
  EXPECT_EQ(t.chain_start, 0u);
  EXPECT_EQ(t.ranks_lo, 8);
  EXPECT_EQ(t.ranks_hi, 16);
  EXPECT_DOUBLE_EQ(t.boundary, 12.0);
  EXPECT_NEAR(t.coupling_before, 1.02, 1e-9);
  EXPECT_NEAR(t.coupling_after, 1.35, 1e-9);
}

TEST(TransitionTest, ShortSeriesAreSkipped) {
  coupling::CouplingDatabase db;
  for (int p : {1, 4, 16}) {  // 3 points < 2 * min_segment_points
    db.record({{"app", "S", p, 2, 0}, p < 8 ? 1.0 : 2.0, 1.0});
  }
  EXPECT_TRUE(detect_coupling_transitions(db).empty());
}

}  // namespace
}  // namespace kcoup::model
