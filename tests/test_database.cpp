// Tests for the coupling database and reuse policies (the paper's section 6
// future work implemented as a library feature).

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "coupling/database.hpp"

namespace kcoup::coupling {
namespace {

ChainCoupling chain(std::size_t start, std::size_t length, double p_chain,
                    double p_sum) {
  ChainCoupling c;
  c.start = start;
  c.length = length;
  for (std::size_t i = 0; i < length; ++i) c.members.push_back(start + i);
  c.chain_time = p_chain;
  c.isolated_sum = p_sum;
  c.label = "c" + std::to_string(start);
  return c;
}

TEST(DatabaseTest, RecordAndExactFind) {
  CouplingDatabase db;
  const std::vector<ChainCoupling> chains{chain(0, 2, 8.0, 10.0),
                                          chain(1, 2, 9.0, 10.0)};
  db.record("BT", "W", 4, chains);
  EXPECT_EQ(db.size(), 2u);

  const auto r = db.find(CouplingKey{"BT", "W", 4, 2, 1});
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->coupling(), 0.9);
  EXPECT_FALSE(db.find(CouplingKey{"BT", "W", 9, 2, 1}).has_value());
  EXPECT_FALSE(db.find(CouplingKey{"SP", "W", 4, 2, 1}).has_value());
}

TEST(DatabaseTest, CouplingGuardsAgainstZeroIsolatedSum) {
  // Regression: coupling() used to divide by zero.
  CouplingRecord r;
  r.chain_time = 1.5;
  r.isolated_sum = 0.0;
  EXPECT_TRUE(std::isnan(r.coupling()));
  r.isolated_sum = 3.0;
  EXPECT_DOUBLE_EQ(r.coupling(), 0.5);
}

TEST(DatabaseTest, RecordRejectsDegenerateValues) {
  CouplingDatabase db;
  const CouplingKey key{"BT", "W", 4, 2, 0};
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(db.record(CouplingRecord{key, 0.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(db.record(CouplingRecord{key, -1.0, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(db.record(CouplingRecord{key, 1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(db.record(CouplingRecord{key, 1.0, -1.0}),
               std::invalid_argument);
  EXPECT_THROW(db.record(CouplingRecord{key, nan, 1.0}), std::invalid_argument);
  EXPECT_THROW(db.record(CouplingRecord{key, 1.0, nan}), std::invalid_argument);
  EXPECT_THROW(db.record(CouplingRecord{key, inf, 1.0}), std::invalid_argument);
  EXPECT_THROW(db.record(CouplingRecord{key, 1.0, inf}), std::invalid_argument);
  EXPECT_EQ(db.size(), 0u);
  db.record(CouplingRecord{key, 1.0, 2.0});
  EXPECT_EQ(db.size(), 1u);
}

TEST(DatabaseTest, RecordReplacesSameKey) {
  CouplingDatabase db;
  db.record(CouplingRecord{CouplingKey{"BT", "W", 4, 2, 0}, 8.0, 10.0});
  db.record(CouplingRecord{CouplingKey{"BT", "W", 4, 2, 0}, 7.0, 10.0});
  EXPECT_EQ(db.size(), 1u);
  EXPECT_DOUBLE_EQ(db.find(CouplingKey{"BT", "W", 4, 2, 0})->chain_time, 7.0);
}

TEST(DatabaseTest, NearestRanksPrefersLogDistance) {
  CouplingDatabase db;
  db.record(CouplingRecord{CouplingKey{"BT", "A", 4, 2, 0}, 1.0, 1.0});
  db.record(CouplingRecord{CouplingKey{"BT", "A", 9, 2, 0}, 2.0, 2.0});
  db.record(CouplingRecord{CouplingKey{"BT", "A", 36, 2, 0}, 3.0, 3.0});
  // Target P=16: log-nearest of {4, 9, 36} is 9 (16/9 < 36/16 < 16/4).
  const auto r = db.find_nearest_ranks(CouplingKey{"BT", "A", 16, 2, 0});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->key.ranks, 9);
  // Exact hit wins.
  EXPECT_EQ(db.find_nearest_ranks(CouplingKey{"BT", "A", 36, 2, 0})->key.ranks,
            36);
}

TEST(DatabaseTest, NearestRanksTieBreaksOnSmallerRankCount) {
  // P=2 and P=8 are log-equidistant from a P=4 target.  The winner must be
  // the smaller rank count regardless of record insertion order.
  {
    CouplingDatabase db;
    db.record(CouplingRecord{CouplingKey{"BT", "A", 8, 2, 0}, 1.0, 1.0});
    db.record(CouplingRecord{CouplingKey{"BT", "A", 2, 2, 0}, 2.0, 2.0});
    const auto r = db.find_nearest_ranks(CouplingKey{"BT", "A", 4, 2, 0});
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->key.ranks, 2);
  }
  {
    CouplingDatabase db;
    db.record(CouplingRecord{CouplingKey{"BT", "A", 2, 2, 0}, 2.0, 2.0});
    db.record(CouplingRecord{CouplingKey{"BT", "A", 8, 2, 0}, 1.0, 1.0});
    const auto r = db.find_nearest_ranks(CouplingKey{"BT", "A", 4, 2, 0});
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->key.ranks, 2);
  }
}

TEST(DatabaseTest, OtherConfigPrefersRequested) {
  CouplingDatabase db;
  db.record(CouplingRecord{CouplingKey{"BT", "S", 4, 2, 0}, 1.0, 1.0});
  db.record(CouplingRecord{CouplingKey{"BT", "W", 4, 2, 0}, 2.0, 2.0});
  const auto r =
      db.find_other_config(CouplingKey{"BT", "A", 4, 2, 0}, "W");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->key.config, "W");
  const auto any =
      db.find_other_config(CouplingKey{"BT", "A", 4, 2, 0}, "missing");
  ASSERT_TRUE(any.has_value());
  // Never returns the target config itself.
  EXPECT_NE(any->key.config, "A");
}

TEST(DatabaseTest, ReuseChainsAssemblesFullSet) {
  CouplingDatabase db;
  db.record("BT", "A",
            9, std::vector<ChainCoupling>{chain(0, 2, 8.0, 10.0),
                                          chain(1, 2, 9.0, 10.0),
                                          chain(2, 2, 7.0, 10.0)});
  const auto reused = db.reuse_chains_for("BT", "A", 25, 2, 3);
  ASSERT_EQ(reused.size(), 3u);
  EXPECT_DOUBLE_EQ(reused[0].coupling(), 0.8);
  EXPECT_DOUBLE_EQ(reused[2].coupling(), 0.7);
  EXPECT_EQ(reused[1].members, (std::vector<std::size_t>{1, 2}));
  EXPECT_NE(reused[0].label.find("P=9"), std::string::npos);
  // Missing chain start -> empty result.
  EXPECT_TRUE(db.reuse_chains_for("BT", "A", 25, 3, 3).empty());
}

TEST(DatabaseTest, CsvRoundTrip) {
  CouplingDatabase db;
  db.record("BT", "W", 4,
            std::vector<ChainCoupling>{chain(0, 3, 8.25, 10.5)});
  db.record("SP", "A", 16,
            std::vector<ChainCoupling>{chain(2, 2, 1.5, 2.0)});
  std::stringstream s;
  db.save_csv(s);

  CouplingDatabase loaded;
  loaded.load_csv(s);
  EXPECT_EQ(loaded.size(), 2u);
  const auto r = loaded.find(CouplingKey{"BT", "W", 4, 3, 0});
  ASSERT_TRUE(r.has_value());
  EXPECT_NEAR(r->chain_time, 8.25, 1e-12);
  EXPECT_NEAR(r->isolated_sum, 10.5, 1e-12);
}

TEST(DatabaseTest, MalformedCsvThrows) {
  CouplingDatabase db;
  std::stringstream empty;
  EXPECT_THROW(db.load_csv(empty), std::runtime_error);

  std::stringstream bad(
      "application,config,ranks,chain_length,chain_start,chain_time,"
      "isolated_sum\nBT,W,not-a-number,2,0,1.0,2.0\n");
  EXPECT_THROW(db.load_csv(bad), std::runtime_error);

  std::stringstream short_line(
      "application,config,ranks,chain_length,chain_start,chain_time,"
      "isolated_sum\nBT,W,4\n");
  EXPECT_THROW(db.load_csv(short_line), std::runtime_error);
}

TEST(DatabaseTest, LoadCsvFileRoundTripsThroughDisk) {
  namespace fs = std::filesystem;
  const fs::path path = fs::path(::testing::TempDir()) / "kcoup_db_ok.csv";
  CouplingDatabase out;
  out.record("BT", "W", 4, std::vector<ChainCoupling>{chain(0, 2, 8.0, 10.0),
                                                      chain(1, 2, 9.0, 10.0)});
  out.save_csv_file(path.string());

  CouplingDatabase in;
  in.load_csv_file(path.string());
  EXPECT_EQ(in.size(), 2u);
  const auto found = in.find({"BT", "W", 4, 2, 1});
  ASSERT_TRUE(found.has_value());
  EXPECT_DOUBLE_EQ(found->chain_time, 9.0);
  fs::remove(path);
}

TEST(DatabaseTest, LoadCsvFileNamesMissingPath) {
  CouplingDatabase db;
  const std::string path = "/nonexistent/kcoup/store.csv";
  try {
    db.load_csv_file(path);
    FAIL() << "expected load_csv_file to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
}

TEST(DatabaseTest, LoadCsvFileNamesPathAndLineOnMalformedContent) {
  namespace fs = std::filesystem;
  const fs::path path = fs::path(::testing::TempDir()) / "kcoup_db_bad.csv";
  {
    std::ofstream out(path);
    out << "application,config,ranks,chain_length,chain_start,chain_time,"
           "isolated_sum\n"
        << "BT,W,4,2,0,8.0,10.0\n"
        << "BT,W,not_a_number,2,1,9.0,10.0\n";
  }
  CouplingDatabase db;
  try {
    db.load_csv_file(path.string());
    FAIL() << "expected load_csv_file to throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path.string()), std::string::npos) << what;
    EXPECT_NE(what.find("3"), std::string::npos) << what;  // offending line
  }
  fs::remove(path);
}

TEST(DatabaseTest, ReusePredictionUsesDonorCouplings) {
  // Donor couplings C = 0.8 everywhere; fresh isolated means at the target.
  std::vector<ChainCoupling> donor{chain(0, 2, 8.0, 10.0),
                                   chain(1, 2, 8.0, 10.0)};
  PredictionInputs in;
  in.isolated_means = {2.0, 3.0};
  in.iterations = 10;
  const double predicted = reuse_prediction(in, donor);
  EXPECT_DOUBLE_EQ(predicted, 10.0 * 0.8 * 5.0);
}

}  // namespace
}  // namespace kcoup::coupling
