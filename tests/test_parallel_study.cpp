// Tests for the timed parallel path: the generic parallel measurement
// protocol (coupling/parallel_measurement.hpp) and the timing-only BT ranks
// (npb/bt/bt_timed.hpp), where pipeline fill and load imbalance are
// emergent rather than analytically modeled.

#include <gtest/gtest.h>

#include <cmath>

#include "coupling/parallel_measurement.hpp"
#include "machine/config.hpp"
#include "npb/bt/bt_timed.hpp"

namespace kcoup {
namespace {

TEST(ParallelMeasurementTest, SingleRankMatchesSerialSemantics) {
  // Two kernels that just charge fixed virtual time: every predictor is
  // exact and couplings are 1.
  const auto result = [&] {
    coupling::ParallelStudyResult out;
    (void)simmpi::run(1, {}, [&](simmpi::Comm& comm) {
      coupling::ParallelLoopApp app;
      app.loop = {{"A", [&comm] { comm.advance(0.25); }},
                  {"B", [&comm] { comm.advance(0.75); }}};
      app.iterations = 10;
      const coupling::StudyOptions options{{2}, {}};
      out = coupling::run_parallel_study(comm, app, options);
    });
    return out;
  }();
  EXPECT_NEAR(result.actual_s, 10.0, 1e-12);
  EXPECT_NEAR(result.summation_s, 10.0, 1e-12);
  ASSERT_EQ(result.by_length.size(), 1u);
  for (const auto& c : result.by_length[0].chains) {
    EXPECT_NEAR(c.coupling(), 1.0, 1e-12);
  }
  EXPECT_LT(result.by_length[0].relative_error, 1e-9);
}

TEST(ParallelMeasurementTest, EmptyLoopRejected) {
  EXPECT_THROW(
      (void)simmpi::run(1, {},
                        [&](simmpi::Comm& comm) {
                          coupling::ParallelLoopApp app;
                          const coupling::StudyOptions options{{1}, {}};
                          (void)coupling::run_parallel_study(comm, app,
                                                             options);
                        }),
      std::invalid_argument);
}

TEST(ParallelMeasurementTest, BarrierMakesResultsGlobal) {
  // Rank 1 is 3x slower: the measured mean must reflect the slow rank on
  // every rank (max semantics via barrier).
  (void)simmpi::run(2, {}, [&](simmpi::Comm& comm) {
    coupling::ParallelLoopApp app;
    const double mine = comm.rank() == 0 ? 0.1 : 0.3;
    app.loop = {{"K", [&comm, mine] { comm.advance(mine); }}};
    app.iterations = 1;
    const coupling::StudyOptions options{{1}, {}};
    const auto r = coupling::run_parallel_study(comm, app, options);
    EXPECT_NEAR(r.isolated_means[0], 0.3, 1e-12);
  });
}

npb::bt::TimedBtOptions timed_options() {
  npb::bt::TimedBtOptions o;
  o.machine = machine::ibm_sp_p2sc();
  return o;
}

TEST(TimedBtTest, DeterministicAcrossRuns) {
  const coupling::StudyOptions study{{2}, {}};
  const auto a = npb::bt::run_bt_parallel_study(12, 20, 4, timed_options(), study);
  const auto b = npb::bt::run_bt_parallel_study(12, 20, 4, timed_options(), study);
  EXPECT_EQ(a.actual_s, b.actual_s);
  EXPECT_EQ(a.summation_s, b.summation_s);
  for (std::size_t i = 0; i < a.by_length[0].chains.size(); ++i) {
    EXPECT_EQ(a.by_length[0].chains[i].chain_time,
              b.by_length[0].chains[i].chain_time);
  }
}

TEST(TimedBtTest, CouplingPredictorBeatsSummationAtSmallClass) {
  const coupling::StudyOptions study{{2}, {}};
  const auto r = npb::bt::run_bt_parallel_study(12, 60, 4, timed_options(), study);
  EXPECT_GT(r.actual_s, 0.0);
  EXPECT_LT(r.by_length[0].relative_error, r.summation_error);
}

TEST(TimedBtTest, ConstructiveCouplingAtWorkstationGrid) {
  const coupling::StudyOptions study{{3}, {}};
  const auto r = npb::bt::run_bt_parallel_study(32, 20, 4, timed_options(), study);
  double mean = 0.0;
  for (const auto& c : r.by_length[0].chains) mean += c.coupling();
  mean /= static_cast<double>(r.by_length[0].chains.size());
  EXPECT_LT(mean, 0.98);  // the W regime is constructive in the timed path too
}

TEST(TimedBtTest, PipelineSerialisationIsEmergent) {
  // The distributed y sweep cannot speed up linearly with ranks: the
  // forward/backward hand-off serialises them.  Compare the isolated
  // Y_Solve mean at P=1 vs P=16: the speedup must be well below 16x.
  const coupling::StudyOptions study{{1}, {}};
  const auto r1 = npb::bt::run_bt_parallel_study(32, 4, 1, timed_options(), study);
  const auto r16 =
      npb::bt::run_bt_parallel_study(32, 4, 16, timed_options(), study);
  const double y1 = r1.isolated_means[2];
  const double y16 = r16.isolated_means[2];
  EXPECT_LT(y16, y1);              // still faster than serial
  EXPECT_GT(y16 * 16.0, 2.0 * y1); // but far from perfect scaling
  // X_Solve has no pipeline: it must scale much better than Y_Solve.
  const double x1 = r1.isolated_means[1];
  const double x16 = r16.isolated_means[1];
  EXPECT_LT(x16 / x1, y16 / y1);
}

TEST(TimedBtTest, JitterCreatesDestructiveCouplingUnderSync) {
  // With zero jitter ranks stay aligned; with jitter, alternating kernels
  // must re-absorb skew at every hand-off, raising the actual time.
  npb::bt::TimedBtOptions no_jitter = timed_options();
  no_jitter.jitter = 0.0;
  npb::bt::TimedBtOptions with_jitter = timed_options();
  with_jitter.jitter = 0.2;
  const coupling::StudyOptions study{{2}, {}};
  const auto a = npb::bt::run_bt_parallel_study(12, 30, 9, no_jitter, study);
  const auto b = npb::bt::run_bt_parallel_study(12, 30, 9, with_jitter, study);
  EXPECT_GT(b.actual_s, a.actual_s);
}

}  // namespace
}  // namespace kcoup
