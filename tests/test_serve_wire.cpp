// Wire-level tests for the event-driven serve path: the hardened frame
// decoder (length overflow, incremental feeding), the best-effort
// non-blocking reject send, JSON escaping of control characters and the
// string-aware field scanner, request pipelining order, mid-pipeline
// framing errors, and the poll(2) fallback backend.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "coupling/analysis.hpp"
#include "coupling/database.hpp"
#include "serve/client.hpp"
#include "serve/framing.hpp"
#include "serve/poller.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/workload.hpp"

#include "serve_format_env.hpp"

namespace kcoup {
namespace {

// --- Frame decoder ----------------------------------------------------------

serve::FrameDecodeStatus decode(const std::string& buf, std::size_t* pos,
                                std::string* payload,
                                std::size_t max_payload = 1024) {
  return serve::decode_frame(buf, pos, max_payload, payload);
}

TEST(FramingTest, DecodesFramesIncrementally) {
  std::string buf;
  std::size_t pos = 0;
  std::string payload;

  EXPECT_EQ(decode(buf, &pos, &payload), serve::FrameDecodeStatus::kNeedMore);
  buf += "13";
  EXPECT_EQ(decode(buf, &pos, &payload), serve::FrameDecodeStatus::kNeedMore);
  buf += "\n{\"op\":\"pi";
  EXPECT_EQ(decode(buf, &pos, &payload), serve::FrameDecodeStatus::kNeedMore);
  EXPECT_EQ(pos, 0u);  // nothing consumed until a whole frame is there
  buf += "ng\"}";
  ASSERT_EQ(decode(buf, &pos, &payload), serve::FrameDecodeStatus::kFrame);
  EXPECT_EQ(payload, "{\"op\":\"ping\"}");
  EXPECT_EQ(pos, buf.size());

  // Two complete frames plus a partial third, back to back.
  buf += "2\nab0\n5\nhel";
  ASSERT_EQ(decode(buf, &pos, &payload), serve::FrameDecodeStatus::kFrame);
  EXPECT_EQ(payload, "ab");
  ASSERT_EQ(decode(buf, &pos, &payload), serve::FrameDecodeStatus::kFrame);
  EXPECT_EQ(payload, "");  // zero-length payload is a valid frame
  EXPECT_EQ(decode(buf, &pos, &payload), serve::FrameDecodeStatus::kNeedMore);
  buf += "lo";
  ASSERT_EQ(decode(buf, &pos, &payload), serve::FrameDecodeStatus::kFrame);
  EXPECT_EQ(payload, "hello");
}

TEST(FramingTest, OverflowingLengthIsMalformedNotWrapped) {
  std::size_t pos = 0;
  std::string payload;
  // 20 nines = 10^20 - 1: wraps std::uint64_t if accumulated naively.  The
  // unhardened parser computed a small garbage length, passed the
  // max_bytes check, and desynchronized the stream.
  EXPECT_EQ(decode("99999999999999999999\nx", &pos, &payload),
            serve::FrameDecodeStatus::kMalformed);
  pos = 0;
  // Exactly 2^64: still 20 digits, still wraps.
  EXPECT_EQ(decode("18446744073709551616\nx", &pos, &payload),
            serve::FrameDecodeStatus::kMalformed);
  pos = 0;
  // 2^64 - 1 does fit in 20 digits: it must parse as a number and then be
  // rejected as oversized, not malformed.
  EXPECT_EQ(decode("18446744073709551615\nx", &pos, &payload),
            serve::FrameDecodeStatus::kOversized);
  pos = 0;
  // 21 digits can never be a sane length.
  EXPECT_EQ(decode("100000000000000000000\nx", &pos, &payload),
            serve::FrameDecodeStatus::kMalformed);
}

TEST(FramingTest, RejectsEmptyAndNonDigitLengths) {
  std::size_t pos = 0;
  std::string payload;
  EXPECT_EQ(decode("\n", &pos, &payload),
            serve::FrameDecodeStatus::kMalformed);
  pos = 0;
  EXPECT_EQ(decode("12a\n", &pos, &payload),
            serve::FrameDecodeStatus::kMalformed);
  pos = 0;
  EXPECT_EQ(decode("banana\n", &pos, &payload),
            serve::FrameDecodeStatus::kMalformed);
  pos = 0;
  EXPECT_EQ(decode("-1\n", &pos, &payload),
            serve::FrameDecodeStatus::kMalformed);
}

TEST(FramingTest, OversizedLengthReportsBeforePayloadArrives) {
  std::size_t pos = 0;
  std::string payload;
  // The length alone is enough to reject: no need to wait for 4096 bytes.
  EXPECT_EQ(serve::decode_frame("4096\n", &pos, 128, &payload),
            serve::FrameDecodeStatus::kOversized);
}

TEST(FramingTest, AccumulateLengthDigitSharedRule) {
  std::size_t length = 0;
  for (char c : std::string("1234")) {
    EXPECT_TRUE(serve::accumulate_length_digit(&length, c));
  }
  EXPECT_EQ(length, 1234u);
  EXPECT_FALSE(serve::accumulate_length_digit(&length, 'x'));

  length = std::numeric_limits<std::size_t>::max() / 10;
  EXPECT_TRUE(serve::accumulate_length_digit(&length, '5'));  // == max
  EXPECT_FALSE(serve::accumulate_length_digit(&length, '0'));  // wraps
}

// --- Best-effort reject send ------------------------------------------------

TEST(SendFrameBestEffortTest, DeliversFrameToAReadingPeer) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string payload = serve::error_json("overloaded", 429);
  EXPECT_TRUE(serve::send_frame_best_effort(fds[0], payload));
  const std::string expect = serve::encode_frame(payload);
  std::string got(expect.size(), '\0');
  ASSERT_EQ(::recv(fds[1], got.data(), got.size(), 0),
            static_cast<ssize_t>(got.size()));
  EXPECT_EQ(got, expect);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(SendFrameBestEffortTest, GivesUpInsteadOfBlockingOnAFullBuffer) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const int small = 4096;
  ::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  // Fill the send buffer without ever blocking ourselves.
  const std::string junk(4096, 'x');
  for (;;) {
    const ssize_t n =
        ::send(fds[0], junk.data(), junk.size(), MSG_DONTWAIT | MSG_NOSIGNAL);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    ASSERT_GE(n, 0);
  }
  // A blocking send here would hang forever — the peer never reads.  The
  // best-effort variant must return promptly and report failure.
  EXPECT_FALSE(
      serve::send_frame_best_effort(fds[0], std::string(8192, 'y')));
  ::close(fds[0]);
  ::close(fds[1]);
}

// --- JSON escaping ----------------------------------------------------------

TEST(JsonEscapeTest, ControlCharactersBecomeValidJsonEscapes) {
  EXPECT_EQ(serve::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(serve::json_escape("line1\nline2\ttab"),
            "line1\\nline2\\ttab");
  EXPECT_EQ(serve::json_escape(std::string("\x01\x1f", 2)),
            "\\u0001\\u001f");
  // No raw control byte may survive into the output.
  const std::string all = [] {
    std::string s;
    for (int c = 0; c < 0x20; ++c) s += static_cast<char>(c);
    return s;
  }();
  for (char c : serve::json_escape(all)) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
}

TEST(JsonEscapeTest, NamedEscapesDecodeBackToBytes) {
  // The old decoder collapsed \n to a literal 'n'; a config string with a
  // newline came back as "line1nline2".
  const std::string json = "{\"v\":\"line1\\nline2\\ttab\\u0001\"}";
  const auto v = serve::json_string_field(json, "v");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, std::string("line1\nline2\ttab\x01"));
}

TEST(JsonEscapeTest, UnicodeEscapesDecodeToUtf8) {
  const auto a = serve::json_string_field("{\"v\":\"\\u0041\"}", "v");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, "A");
  const auto e = serve::json_string_field("{\"v\":\"\\u00e9\"}", "v");
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(*e, "\xc3\xa9");  // é as UTF-8
  const auto cjk = serve::json_string_field("{\"v\":\"\\u4e2d\"}", "v");
  ASSERT_TRUE(cjk.has_value());
  EXPECT_EQ(*cjk, "\xe4\xb8\xad");  // 中 as UTF-8
  // Truncated or non-hex \u escapes are malformed, not silently mangled.
  EXPECT_FALSE(serve::json_string_field("{\"v\":\"\\u12\"}", "v").has_value());
  EXPECT_FALSE(
      serve::json_string_field("{\"v\":\"\\uzzzz\"}", "v").has_value());
}

TEST(JsonEscapeTest, RoundTripsAdversarialStrings) {
  // Deterministic xorshift so the property test is reproducible.
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int trial = 0; trial < 200; ++trial) {
    std::string s;
    const std::size_t len = next() % 64;
    for (std::size_t i = 0; i < len; ++i) {
      s += static_cast<char>(next() % 256);  // every byte value, incl. NUL
    }
    const std::string json = "{\"v\":\"" + serve::json_escape(s) + "\"}";
    const auto back = serve::json_string_field(json, "v");
    ASSERT_TRUE(back.has_value()) << "trial " << trial;
    EXPECT_EQ(*back, s) << "trial " << trial;
  }
}

TEST(JsonEscapeTest, PredictionWithHostileStringsRoundTrips) {
  serve::Prediction p;
  p.ok = false;
  p.error = "bad \"config\"\nwith \\ control \x02 bytes";
  p.key.application = "BT\ttabbed";
  p.key.config = "see \"ranks\": 7, oops";
  p.key.ranks = 4;
  p.key.chain_length = 2;
  const auto back = serve::parse_prediction(serve::prediction_json(p));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->error, p.error);
  EXPECT_EQ(back->key.application, p.key.application);
  EXPECT_EQ(back->key.config, p.key.config);
  EXPECT_EQ(back->key.ranks, 4);
}

// --- String-aware field scanner ---------------------------------------------

TEST(JsonFieldTest, FieldNameInsideStringValueIsNotMatched) {
  // Adversarial payload with raw quotes inside a "string": the flat
  // substring search used to find the decoy "ranks": 7 inside the config
  // value and answer the wrong query.
  const std::string payload =
      "{\"op\":\"predict\",\"app\":\"BT\","
      "\"config\":\"see \"ranks\": 7, oops\",\"ranks\":4,\"chain\":2}";
  const auto request = serve::parse_request(payload);
  ASSERT_TRUE(request.has_value());
  ASSERT_EQ(request->queries.size(), 1u);
  EXPECT_EQ(request->queries[0].ranks, 4);
  EXPECT_EQ(request->queries[0].chain_length, 2u);
}

TEST(JsonFieldTest, EscapedQuotesInValuesDoNotHideLaterFields) {
  const std::string payload =
      "{\"config\":\"tricky \\\"chain\\\": 9 value\",\"chain\":3}";
  const auto chain = serve::json_number_field(payload, "chain");
  ASSERT_TRUE(chain.has_value());
  EXPECT_EQ(*chain, 3.0);
  const auto config = serve::json_string_field(payload, "config");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(*config, "tricky \"chain\": 9 value");
}

TEST(JsonFieldTest, MissingFieldAndUnterminatedStringAreRejected) {
  EXPECT_FALSE(serve::json_number_field("{\"a\":1}", "b").has_value());
  EXPECT_FALSE(serve::json_string_field("{\"a\":\"unterminated", "a")
                   .has_value());
}

// --- Server wire behaviour --------------------------------------------------

/// Deterministic 3-kernel workload (mirror of test_serve.cpp's): means are
/// closed-form in ranks, so server predictions are instant and
/// reproducible.
class WireWorkload final : public serve::Workload {
 public:
  static constexpr std::size_t kLoop = 3;

  bool valid_cell(const std::string& application, const std::string& config,
                  int ranks) const override {
    return application == "APP" && config == "X" && ranks >= 1;
  }

  serve::CellInputs measure_cell(const std::string& application,
                                 const std::string& config,
                                 int ranks) const override {
    if (!valid_cell(application, config, ranks)) {
      throw std::invalid_argument("WireWorkload: invalid cell");
    }
    serve::CellInputs cell;
    for (std::size_t k = 0; k < kLoop; ++k) {
      cell.inputs.isolated_means.push_back(mean(k, ranks));
    }
    cell.inputs.prologue_s = 0.001;
    cell.inputs.epilogue_s = 0.002;
    cell.inputs.iterations = 10;
    cell.loop_size = kLoop;
    cell.grid_extent = 12.0;
    cell.summation_s = coupling::summation_prediction(cell.inputs);
    cell.actual_s = cell.summation_s * 1.1;
    return cell;
  }

  std::optional<serve::CellShape> shape(
      const std::string& application,
      const std::string& config) const override {
    if (application != "APP" || config != "X") return std::nullopt;
    return serve::CellShape{12.0, 10};
  }

  static double mean(std::size_t k, int ranks) {
    return 0.01 * static_cast<double>(k + 1) / static_cast<double>(ranks);
  }
};

class WireServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::path(::testing::TempDir()) /
            ("kcoup_wire_db_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name() +
             ".csv");
    coupling::CouplingDatabase db;
    add_group(&db, 4);
    add_group(&db, 16);
    test::save_db_in_env_format(std::move(db), path_.string());
    workload_ = std::make_unique<WireWorkload>();
    engine_ = std::make_unique<serve::QueryEngine>(workload_.get());
    source_ = std::make_unique<serve::SnapshotSource>(
        path_.string(), serve::CellFn{}, serve::SnapshotOptions{false});
    source_->load();
  }

  void TearDown() override {
    server_.reset();
    source_.reset();
    std::filesystem::remove(path_);
  }

  /// One complete q=2 chain group for (APP, X, ranks).
  static void add_group(coupling::CouplingDatabase* db, int ranks) {
    for (std::size_t start = 0; start < WireWorkload::kLoop; ++start) {
      coupling::CouplingRecord r;
      r.key = {"APP", "X", ranks, 2, start};
      r.isolated_sum =
          WireWorkload::mean(start, ranks) +
          WireWorkload::mean((start + 1) % WireWorkload::kLoop, ranks);
      r.chain_time =
          r.isolated_sum * (1.05 + 0.01 * static_cast<double>(start));
      db->record(r);
    }
  }

  void start_server(serve::ServerConfig config = {}) {
    server_ = std::make_unique<serve::Server>(source_.get(), engine_.get(),
                                              config);
    server_->start();
  }

  serve::Client connect() {
    serve::Client client;
    client.connect("127.0.0.1", server_->port());
    return client;
  }

  std::filesystem::path path_;
  std::unique_ptr<WireWorkload> workload_;
  std::unique_ptr<serve::QueryEngine> engine_;
  std::unique_ptr<serve::SnapshotSource> source_;
  std::unique_ptr<serve::Server> server_;
};

TEST_F(WireServerTest, OverflowingLengthPrefixGets400AndCloses) {
  start_server();
  serve::Client client = connect();
  // The 20-nines length wraps 64-bit accumulation; the unhardened server
  // computed a tiny garbage length, answered the "frame", and then read the
  // rest of the digits as the next frame's length — a desynchronized
  // stream.  Now it is one clean 400 and a close.
  const auto response =
      client.roundtrip_raw("99999999999999999999\n{\"op\":\"ping\"}");
  ASSERT_TRUE(response.has_value());
  EXPECT_NE(response->find("\"code\":400"), std::string::npos);
  EXPECT_EQ(server_->metrics().malformed_frames, 1u);
  EXPECT_FALSE(client.ping());  // connection closed after the error frame
}

TEST_F(WireServerTest, PipelinedRequestsAnswerInOrder) {
  start_server();
  serve::Client client = connect();
  // 12 requests in flight at once, with distinguishable answers: predicts
  // alternate between ranks 4 and 16, every third request is a ping.
  std::vector<std::string> expects;
  for (int i = 0; i < 12; ++i) {
    if (i % 3 == 2) {
      ASSERT_TRUE(client.send_request(serve::ping_request()));
      expects.push_back("\"op\":\"ping\"");
    } else {
      const int ranks = (i % 2 == 0) ? 4 : 16;
      ASSERT_TRUE(client.send_request(
          serve::predict_request({"APP", "X", ranks, 2})));
      expects.push_back("\"ranks\":" + std::to_string(ranks) + ",");
    }
  }
  for (std::size_t i = 0; i < expects.size(); ++i) {
    const auto response = client.read_response();
    ASSERT_TRUE(response.has_value()) << "response " << i;
    EXPECT_NE(response->find(expects[i]), std::string::npos)
        << "response " << i << " out of order: " << *response;
    EXPECT_NE(response->find("\"ok\":true"), std::string::npos)
        << *response;
  }
  EXPECT_EQ(server_->requests_handled(), 12u);
}

TEST_F(WireServerTest, PipelinedAnswersMatchBlockingAnswersBitForBit) {
  start_server();
  serve::Client blocking = connect();
  const auto reference = blocking.predict({"APP", "X", 4, 2});
  ASSERT_TRUE(reference.has_value());
  ASSERT_TRUE(reference->ok);

  serve::Client pipelined = connect();
  const std::string payload = serve::predict_request({"APP", "X", 4, 2});
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(pipelined.send_request(payload));
  }
  for (int i = 0; i < 8; ++i) {
    const auto response = pipelined.read_response();
    ASSERT_TRUE(response.has_value());
    const auto p = serve::parse_prediction(*response);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->coupling_s, reference->coupling_s);
    EXPECT_EQ(p->summation_s, reference->summation_s);
    EXPECT_EQ(p->actual_s, reference->actual_s);
  }
}

TEST_F(WireServerTest, MalformedJsonPayloadMidPipelineKeepsConnection) {
  start_server();
  serve::Client client = connect();
  ASSERT_TRUE(client.send_request(serve::predict_request({"APP", "X", 4, 2})));
  ASSERT_TRUE(client.send_request("{\"op\":\"nonsense\"}"));
  ASSERT_TRUE(client.send_request(serve::predict_request({"APP", "X", 4, 2})));
  const auto first = client.read_response();
  ASSERT_TRUE(first.has_value());
  EXPECT_NE(first->find("\"ok\":true"), std::string::npos);
  const auto second = client.read_response();
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(second->find("\"code\":400"), std::string::npos);
  const auto third = client.read_response();
  ASSERT_TRUE(third.has_value());
  EXPECT_NE(third->find("\"ok\":true"), std::string::npos);
  EXPECT_TRUE(client.ping());  // bad payloads do not cost the connection
}

TEST_F(WireServerTest, MalformedFrameMidPipelineAnswersEarlierFramesFirst) {
  start_server();
  serve::Client client = connect();
  // Two good frames, then garbage where a length should be: both answers
  // must arrive before the 400, then the connection closes.
  ASSERT_TRUE(client.send_request(serve::predict_request({"APP", "X", 4, 2})));
  ASSERT_TRUE(client.send_request(serve::predict_request({"APP", "X", 16, 2})));
  const auto last = client.roundtrip_raw("banana\n");
  ASSERT_TRUE(last.has_value());
  // roundtrip_raw reads the FIRST queued response — the first predict.
  EXPECT_NE(last->find("\"ranks\":4,"), std::string::npos);
  const auto second = client.read_response();
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(second->find("\"ranks\":16,"), std::string::npos);
  const auto error = client.read_response();
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("\"code\":400"), std::string::npos);
  EXPECT_FALSE(client.read_response().has_value());  // closed
  EXPECT_EQ(server_->metrics().malformed_frames, 1u);
}

TEST_F(WireServerTest, PollBackendServesIdentically) {
  serve::ServerConfig config;
  config.force_poll = true;  // exercise the poll(2) fallback on Linux too
  start_server(config);
  serve::Client client = connect();
  EXPECT_TRUE(client.ping());
  const std::string payload = serve::predict_request({"APP", "X", 4, 2});
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(client.send_request(payload));
  for (int i = 0; i < 6; ++i) {
    const auto response = client.read_response();
    ASSERT_TRUE(response.has_value());
    EXPECT_NE(response->find("\"ok\":true"), std::string::npos);
  }
}

TEST_F(WireServerTest, MaxPipelineOneStillAnswersBackToBackFrames) {
  serve::ServerConfig config;
  config.max_pipeline = 1;  // every frame is its own window
  start_server(config);
  serve::Client client = connect();
  const std::string payload = serve::predict_request({"APP", "X", 4, 2});
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(client.send_request(payload));
  for (int i = 0; i < 5; ++i) {
    const auto response = client.read_response();
    ASSERT_TRUE(response.has_value());
    EXPECT_NE(response->find("\"ok\":true"), std::string::npos);
  }
  EXPECT_EQ(server_->requests_handled(), 5u);
}

TEST_F(WireServerTest, AcceptLoopSurvivesNonReadingRejectedPeers) {
  serve::ServerConfig config;
  config.workers = 1;
  config.max_inflight = 1;
  start_server(config);
  serve::Client first = connect();
  ASSERT_TRUE(first.ping());
  // A burst of rejected connections whose owners never read the 429 frame.
  // The reject send is a single non-blocking best-effort write, so none of
  // them can stall the accept loop.
  std::vector<serve::Client> rejected;
  for (int i = 0; i < 8; ++i) rejected.push_back(connect());
  // connect() returns on the TCP handshake (listen backlog), before the
  // acceptor has processed — and rejected — the connection; give it time.
  const auto reject_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server_->metrics().rejected_overload < 8u &&
         std::chrono::steady_clock::now() < reject_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(server_->metrics().rejected_overload, 8u);
  first.close();
  // Accepts must still be live: a retry gets through once capacity frees.
  bool accepted = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    serve::Client retry = connect();
    if (retry.ping()) {
      accepted = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(accepted);
}

}  // namespace
}  // namespace kcoup
