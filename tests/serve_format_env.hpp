#pragma once

// Shared serve-test helper: persist a coupling database in the snapshot
// format selected by the KCOUP_SNAPSHOT_FORMAT environment variable —
// "csv" (or unset) writes the interchange CSV, "kcs" packs the binary
// snapshot.  SnapshotSource sniffs the format from the file contents, so
// the same test fixtures run unchanged against either format; CI exercises
// both by re-running the serve suites with KCOUP_SNAPSHOT_FORMAT=kcs.

#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>

#include "coupling/database.hpp"
#include "serve/pack.hpp"
#include "serve/snapshot.hpp"

namespace kcoup::test {

inline bool packed_snapshot_format() {
  const char* format = std::getenv("KCOUP_SNAPSHOT_FORMAT");
  return format != nullptr && std::string_view(format) == "kcs";
}

inline void save_db_in_env_format(coupling::CouplingDatabase db,
                                  const std::string& path) {
  if (packed_snapshot_format()) {
    serve::pack_snapshot_file(
        serve::PredictorSnapshot(std::move(db), 0, serve::CellFn{},
                                 serve::SnapshotOptions{false}),
        path);
  } else {
    db.save_csv_file(path);
  }
}

}  // namespace kcoup::test
