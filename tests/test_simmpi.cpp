// Tests for the deterministic message-passing runtime (simmpi).

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "simmpi/simmpi.hpp"

namespace kcoup::simmpi {
namespace {

TEST(SimmpiTest, SingleRankRuns) {
  std::atomic<int> calls{0};
  const RunResult r = run(1, {}, [&](Comm& c) {
    EXPECT_EQ(c.rank(), 0);
    EXPECT_EQ(c.size(), 1);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(r.messages, 0u);
}

TEST(SimmpiTest, InvalidRankCountThrows) {
  EXPECT_THROW(run(0, {}, [](Comm&) {}), std::invalid_argument);
}

TEST(SimmpiTest, PointToPointDeliversPayload) {
  const RunResult r = run(2, {}, [](Comm& c) {
    if (c.rank() == 0) {
      const std::vector<double> data{1.5, 2.5, 3.5};
      c.send<double>(1, 7, data);
    } else {
      std::vector<double> in(3);
      c.recv<double>(0, 7, in);
      EXPECT_DOUBLE_EQ(in[0], 1.5);
      EXPECT_DOUBLE_EQ(in[1], 2.5);
      EXPECT_DOUBLE_EQ(in[2], 3.5);
    }
  });
  EXPECT_EQ(r.messages, 1u);
  EXPECT_EQ(r.payload_bytes, 3 * sizeof(double));
}

TEST(SimmpiTest, ChannelsAreFifoPerTag) {
  run(2, {}, [](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        const std::vector<int> v{i};
        c.send<int>(1, 3, v);
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        std::vector<int> v(1);
        c.recv<int>(0, 3, v);
        EXPECT_EQ(v[0], i);
      }
    }
  });
}

TEST(SimmpiTest, TagsAreIndependentChannels) {
  run(2, {}, [](Comm& c) {
    if (c.rank() == 0) {
      const std::vector<int> a{111}, b{222};
      c.send<int>(1, 1, a);
      c.send<int>(1, 2, b);
    } else {
      // Receive in the opposite order of the sends.
      std::vector<int> v(1);
      c.recv<int>(0, 2, v);
      EXPECT_EQ(v[0], 222);
      c.recv<int>(0, 1, v);
      EXPECT_EQ(v[0], 111);
    }
  });
}

TEST(SimmpiTest, SymmetricExchangeDoesNotDeadlock) {
  run(4, {}, [](Comm& c) {
    const int peer = c.rank() ^ 1;  // pairs (0,1) and (2,3)
    const std::vector<double> out{static_cast<double>(c.rank())};
    std::vector<double> in(1);
    c.exchange<double>(peer, 5, out, in);
    EXPECT_DOUBLE_EQ(in[0], static_cast<double>(peer));
  });
}

TEST(SimmpiTest, PayloadSizeMismatchThrows) {
  EXPECT_THROW(run(2, {},
                   [](Comm& c) {
                     if (c.rank() == 0) {
                       const std::vector<int> v{1, 2, 3};
                       c.send<int>(1, 9, v);
                     } else {
                       std::vector<int> in(2);  // wrong size
                       c.recv<int>(0, 9, in);
                     }
                   }),
               std::runtime_error);
}

TEST(SimmpiTest, SendToInvalidRankThrows) {
  EXPECT_THROW(run(1, {},
                   [](Comm& c) {
                     const std::vector<int> v{1};
                     c.send<int>(5, 0, v);
                   }),
               std::runtime_error);
}

TEST(SimmpiTest, AllreduceSumMaxMin) {
  run(4, {}, [](Comm& c) {
    const double mine = static_cast<double>(c.rank() + 1);
    EXPECT_DOUBLE_EQ(c.allreduce_sum(mine), 10.0);
    EXPECT_DOUBLE_EQ(c.allreduce_max(mine), 4.0);
    EXPECT_DOUBLE_EQ(c.allreduce_min(mine), 1.0);
  });
}

TEST(SimmpiTest, AllgatherReturnsRankIndexedValues) {
  run(4, {}, [](Comm& c) {
    const auto v = c.allgather(static_cast<double>(c.rank() * 10));
    ASSERT_EQ(v.size(), 4u);
    for (int r = 0; r < 4; ++r) {
      EXPECT_DOUBLE_EQ(v[static_cast<std::size_t>(r)], r * 10.0);
    }
  });
}

TEST(SimmpiTest, BackToBackAllgathersDoNotInterfere) {
  run(3, {}, [](Comm& c) {
    const auto a = c.allgather(static_cast<double>(c.rank()));
    const auto b = c.allgather(static_cast<double>(c.rank() + 100));
    EXPECT_DOUBLE_EQ(a[2], 2.0);
    EXPECT_DOUBLE_EQ(b[0], 100.0);
  });
}

TEST(SimmpiTest, BroadcastDeliversRootValue) {
  run(3, {}, [](Comm& c) {
    const double v = c.broadcast(c.rank() == 1 ? 42.0 : 0.0, 1);
    EXPECT_DOUBLE_EQ(v, 42.0);
  });
}

TEST(SimmpiTest, VirtualTimeAdvancesWithComputeAndMessages) {
  NetworkParams net;
  net.latency_s = 1.0;
  net.seconds_per_byte = 0.0;
  const RunResult r = run(2, net, [](Comm& c) {
    if (c.rank() == 0) {
      c.advance(5.0);
      const std::vector<double> v{1.0};
      c.send<double>(1, 0, v);
    } else {
      std::vector<double> v(1);
      c.recv<double>(0, 0, v);
      // Arrival at send time (5) + latency (1).
      EXPECT_DOUBLE_EQ(c.now(), 6.0);
    }
  });
  EXPECT_DOUBLE_EQ(r.makespan_s, 6.0);
  EXPECT_DOUBLE_EQ(r.rank_times_s[0], 5.0);
}

TEST(SimmpiTest, ReceiveDoesNotMoveClockBackwards) {
  NetworkParams net;
  net.latency_s = 0.5;
  run(2, net, [](Comm& c) {
    if (c.rank() == 0) {
      const std::vector<double> v{1.0};
      c.send<double>(1, 0, v);  // sent at t=0, arrives t=0.5
    } else {
      c.advance(10.0);
      std::vector<double> v(1);
      c.recv<double>(0, 0, v);
      EXPECT_DOUBLE_EQ(c.now(), 10.0);  // already past the arrival time
    }
  });
}

TEST(SimmpiTest, BarrierSynchronisesClocks) {
  NetworkParams net;
  net.sync_latency_s = 0.25;
  run(4, net, [](Comm& c) {
    c.advance(static_cast<double>(c.rank()));  // ranks at 0,1,2,3
    c.barrier();
    // max(3) + ceil(log2(4)) * 0.25 = 3.5
    EXPECT_DOUBLE_EQ(c.now(), 3.5);
  });
}

TEST(SimmpiTest, CollectiveReductionIsRankOrderDeterministic) {
  // Values chosen so that different fold orders give different doubles.
  std::vector<double> results;
  for (int rep = 0; rep < 5; ++rep) {
    double out = 0.0;
    run(4, {}, [&](Comm& c) {
      const double vals[4] = {1e16, 1.0, -1e16, 1.0};
      const double s = c.allreduce_sum(vals[c.rank()]);
      if (c.rank() == 0) out = s;
    });
    results.push_back(out);
  }
  for (double r : results) EXPECT_EQ(r, results[0]);
}

TEST(SimmpiTest, ManyRanksRingPassDeterministic) {
  const int ranks = 8;
  const RunResult r = run(ranks, {}, [&](Comm& c) {
    // Ring accumulation: each rank adds its id and forwards.
    std::vector<long> token{0};
    if (c.rank() == 0) {
      token[0] = 0;
      c.send<long>(1, 0, token);
      c.recv<long>(ranks - 1, 0, token);
      EXPECT_EQ(token[0], ranks * (ranks - 1) / 2);
    } else {
      c.recv<long>(c.rank() - 1, 0, token);
      token[0] += c.rank();
      c.send<long>((c.rank() + 1) % ranks, 0, token);
    }
  });
  EXPECT_EQ(r.messages, static_cast<std::size_t>(ranks));
}

}  // namespace
}  // namespace kcoup::simmpi
