// Integration tests for the three numeric NPB ports running on simmpi:
// the ADI / SSOR iterations must reduce the residual of the manufactured
// system, converge toward the exact solution, and produce rank-count-
// independent results (the same global answer on 1, 4, ... ranks).

#include <gtest/gtest.h>

#include "npb/bt/bt_app.hpp"
#include "npb/lu/lu_app.hpp"
#include "npb/sp/sp_app.hpp"

namespace kcoup::npb {
namespace {

TEST(BtAppTest, ResidualDropsAndSolutionConverges) {
  bt::BtConfig cfg;
  cfg.n = 10;
  cfg.iterations = 60;
  const bt::BtRunResult r = bt::run_bt(cfg, 1);
  EXPECT_GT(r.initial_residual, 1e-2);
  EXPECT_LT(r.final_residual, r.initial_residual * 1e-3);
  EXPECT_LT(r.final_error, 1e-2);
}

TEST(BtAppTest, RankCountIndependence) {
  bt::BtConfig cfg;
  cfg.n = 8;
  cfg.iterations = 20;
  const auto r1 = bt::run_bt(cfg, 1);
  const auto r4 = bt::run_bt(cfg, 4);
  const auto r9 = bt::run_bt(cfg, 9);
  EXPECT_NEAR(r1.final_residual, r4.final_residual,
              1e-10 * (1.0 + r1.final_residual));
  EXPECT_NEAR(r1.final_error, r4.final_error, 1e-10);
  EXPECT_NEAR(r1.final_residual, r9.final_residual,
              1e-10 * (1.0 + r1.final_residual));
  EXPECT_NEAR(r1.final_error, r9.final_error, 1e-10);
}

TEST(BtAppTest, DeterministicAcrossRuns) {
  bt::BtConfig cfg;
  cfg.n = 8;
  cfg.iterations = 10;
  const auto a = bt::run_bt(cfg, 4);
  const auto b = bt::run_bt(cfg, 4);
  EXPECT_EQ(a.final_residual, b.final_residual);
  EXPECT_EQ(a.final_error, b.final_error);
  EXPECT_EQ(a.run.messages, b.run.messages);
}

TEST(BtAppTest, MessagesScaleWithDecomposition) {
  bt::BtConfig cfg;
  cfg.n = 8;
  cfg.iterations = 5;
  const auto r1 = bt::run_bt(cfg, 1);
  const auto r4 = bt::run_bt(cfg, 4);
  EXPECT_EQ(r1.run.messages, 0u);
  EXPECT_GT(r4.run.messages, 0u);
}

TEST(BtAppTest, VirtualMakespanReflectsNetwork) {
  bt::BtConfig cfg;
  cfg.n = 8;
  cfg.iterations = 5;
  simmpi::NetworkParams slow;
  slow.latency_s = 1e-3;
  simmpi::NetworkParams fast;
  fast.latency_s = 1e-6;
  const auto s = bt::run_bt(cfg, 4, slow);
  const auto f = bt::run_bt(cfg, 4, fast);
  EXPECT_GT(s.run.makespan_s, f.run.makespan_s);
}

TEST(SpAppTest, ResidualDropsAndSolutionConverges) {
  sp::SpConfig cfg;
  cfg.n = 10;
  cfg.iterations = 80;
  const sp::SpRunResult r = sp::run_sp(cfg, 1);
  EXPECT_GT(r.initial_residual, 1e-2);
  EXPECT_LT(r.final_residual, r.initial_residual * 1e-3);
  EXPECT_LT(r.final_error, 1e-2);
}

TEST(SpAppTest, RankCountIndependence) {
  sp::SpConfig cfg;
  cfg.n = 9;
  cfg.iterations = 20;
  const auto r1 = sp::run_sp(cfg, 1);
  const auto r4 = sp::run_sp(cfg, 4);
  EXPECT_NEAR(r1.final_residual, r4.final_residual,
              1e-10 * (1.0 + r1.final_residual));
  EXPECT_NEAR(r1.final_error, r4.final_error, 1e-10);
}

TEST(SpAppTest, DeterministicAcrossRuns) {
  sp::SpConfig cfg;
  cfg.n = 9;
  cfg.iterations = 10;
  const auto a = sp::run_sp(cfg, 4);
  const auto b = sp::run_sp(cfg, 4);
  EXPECT_EQ(a.final_residual, b.final_residual);
  EXPECT_EQ(a.final_error, b.final_error);
}

TEST(LuAppTest, ResidualDropsAndSolutionConverges) {
  lu::LuConfig cfg;
  cfg.n = 10;
  cfg.iterations = 60;
  const lu::LuRunResult r = lu::run_lu(cfg, 1);
  EXPECT_GT(r.initial_residual, 1e-2);
  EXPECT_LT(r.final_residual, r.initial_residual * 1e-3);
  EXPECT_LT(r.final_error, 1e-2);
}

TEST(LuAppTest, RankCountIndependence) {
  lu::LuConfig cfg;
  cfg.n = 8;
  cfg.iterations = 20;
  const auto r1 = lu::run_lu(cfg, 1);
  const auto r2 = lu::run_lu(cfg, 2);
  const auto r8 = lu::run_lu(cfg, 8);
  EXPECT_NEAR(r1.final_residual, r2.final_residual,
              1e-10 * (1.0 + r1.final_residual));
  EXPECT_NEAR(r1.final_error, r8.final_error, 1e-10);
  EXPECT_NEAR(r1.surface_integral, r8.surface_integral,
              1e-10 * (1.0 + std::fabs(r1.surface_integral)));
}

TEST(LuAppTest, WavefrontMessagesAreManyAndSmall) {
  lu::LuConfig cfg;
  cfg.n = 8;
  cfg.iterations = 5;
  const auto r4 = lu::run_lu(cfg, 4);
  ASSERT_GT(r4.run.messages, 0u);
  // "a relatively large number of small communications" (section 4.3):
  // the average LU payload must be far smaller than a full BT face.
  const double avg_payload = static_cast<double>(r4.run.payload_bytes) /
                             static_cast<double>(r4.run.messages);
  EXPECT_LT(avg_payload, 8.0 * 8 * 5 * sizeof(double));
}

TEST(LuAppTest, DeterministicAcrossRuns) {
  lu::LuConfig cfg;
  cfg.n = 8;
  cfg.iterations = 10;
  const auto a = lu::run_lu(cfg, 4);
  const auto b = lu::run_lu(cfg, 4);
  EXPECT_EQ(a.final_residual, b.final_residual);
  EXPECT_EQ(a.surface_integral, b.surface_integral);
}

}  // namespace
}  // namespace kcoup::npb
