// Cross-validation between the two execution paths: the WorkProfiles the
// work models hand to the machine must describe the same communication
// structure the numeric solvers actually perform on simmpi.  These tests
// lock the message counts and payload sizes of both paths together, so a
// change to one that is not mirrored in the other fails loudly.

#include <gtest/gtest.h>

#include "coupling/modeled_kernel.hpp"
#include "machine/config.hpp"
#include "npb/bt/bt_app.hpp"
#include "npb/bt/bt_model.hpp"
#include "npb/lu/lu_app.hpp"
#include "npb/lu/lu_model.hpp"
#include "npb/sp/sp_app.hpp"
#include "npb/sp/sp_model.hpp"

namespace kcoup::npb {
namespace {

const machine::WorkProfile& profile_of(const coupling::LoopApplication& app,
                                       const std::string& name) {
  for (coupling::Kernel* k : app.loop) {
    if (k->name() == name) {
      return dynamic_cast<coupling::ModeledKernel*>(k)->profile();
    }
  }
  throw std::runtime_error("kernel not found: " + name);
}

TEST(ModelVsNumericBt, FaceMessageSizesMatch) {
  // n=12, P=4 (q=2): local ny = nz = 6; a y face is nx*nz*5 doubles.
  auto modeled =
      bt::make_modeled_bt_grid(12, 10, 4, machine::ibm_sp_p2sc());
  const auto& cf = profile_of(modeled->app(), "Copy_Faces");
  ASSERT_EQ(cf.messages.size(), 2u);
  EXPECT_EQ(cf.messages[0].bytes_each, 12u * 6u * 5u * sizeof(double));
  EXPECT_EQ(cf.messages[1].bytes_each, 12u * 6u * 5u * sizeof(double));

  // y_solve forward payload: one BlockTriState (30 doubles) per line,
  // nx*nz lines; backward payload: 5 doubles per line.
  const auto& ys = profile_of(modeled->app(), "Y_Solve");
  ASSERT_EQ(ys.messages.size(), 2u);
  EXPECT_EQ(ys.messages[0].bytes_each, 12u * 6u * 30u * sizeof(double));
  EXPECT_EQ(ys.messages[1].bytes_each, 12u * 6u * 5u * sizeof(double));
}

TEST(ModelVsNumericBt, TotalMessageCountLocked) {
  // Numeric BT, n=12, P=4: per iteration 16 messages (8 halo-face sends in
  // copy_faces, 4 per distributed sweep); run_bt adds two residual_norm
  // halo exchanges (8 each).
  bt::BtConfig cfg;
  cfg.n = 12;
  cfg.iterations = 3;
  const auto r = bt::run_bt(cfg, 4);
  EXPECT_EQ(r.run.messages, 3u * 16u + 2u * 8u);
}

TEST(ModelVsNumericBt, ModelCountsBoundPerRankTruth) {
  // The model prices the interior (maximum-neighbour) rank, so its per-rank
  // message count must be an upper bound on the numeric per-rank average
  // and must not exceed the interior-rank truth (4 faces + 2 per sweep).
  auto modeled = bt::make_modeled_bt_grid(12, 10, 9, machine::ibm_sp_p2sc());
  const auto& cf = profile_of(modeled->app(), "Copy_Faces");
  std::size_t cf_msgs = 0;
  for (const auto& m : cf.messages) cf_msgs += m.count;
  EXPECT_EQ(cf_msgs, 4u);

  bt::BtConfig cfg;
  cfg.n = 12;
  cfg.iterations = 4;
  const auto r = bt::run_bt(cfg, 9);
  // Numeric copy_faces messages per iteration = sum of neighbour counts
  // over all ranks = 24 at q=3; model bound: 4 * 9 = 36 >= 24.
  const double per_iter =
      static_cast<double>(r.run.messages - 2u * 24u) / 4.0;  // minus residuals
  EXPECT_DOUBLE_EQ(per_iter, 24.0 + 12.0 + 12.0);  // cf + y_solve + z_solve
  EXPECT_GE(4.0 * 9.0, 24.0);
}

TEST(ModelVsNumericSp, PentaMessageSizesMatch) {
  // n=12, P=4 (q=2): forward payload 30 doubles per line (2 states x 3
  // values x 5 components), backward 10 doubles per line.
  auto modeled =
      sp::make_modeled_sp_grid(12, 10, 4, machine::ibm_sp_p2sc());
  const auto& ys = profile_of(modeled->app(), "Y_Solve");
  ASSERT_EQ(ys.messages.size(), 2u);
  EXPECT_EQ(ys.messages[0].bytes_each, 12u * 6u * 30u * sizeof(double));
  EXPECT_EQ(ys.messages[1].bytes_each, 12u * 6u * 10u * sizeof(double));
}

TEST(ModelVsNumericSp, TotalMessageCountLocked) {
  // SP per iteration at P=4: 8 halo faces + 4 (y_solve) + 4 (z_solve);
  // txinvr/x_solve/add are communication-free.  Plus 2 residual exchanges.
  sp::SpConfig cfg;
  cfg.n = 12;
  cfg.iterations = 3;
  const auto r = sp::run_sp(cfg, 4);
  EXPECT_EQ(r.run.messages, 3u * 16u + 2u * 8u);
}

TEST(ModelVsNumericLu, WavefrontMessageSizesMatch) {
  // n=8, P=4 (px=py=2): per-plane column hand-off is ny*5 doubles.
  auto modeled = lu::make_modeled_lu_grid(8, 10, 4, machine::ibm_sp_p2sc());
  const auto& lt = profile_of(modeled->app(), "Ssor_LT");
  ASSERT_GE(lt.messages.size(), 2u);
  EXPECT_EQ(lt.messages[0].count, 8u);  // one per z-plane
  EXPECT_EQ(lt.messages[0].bytes_each, 4u * 5u * sizeof(double));
  EXPECT_EQ(lt.messages[1].count, 8u);
  EXPECT_EQ(lt.messages[1].bytes_each, 4u * 5u * sizeof(double));
}

TEST(ModelVsNumericLu, TotalMessageCountLocked) {
  // LU at n=8, P=4 (px=py=2): ssor_iter halo = 8 sends; each sweep sends
  // one column east (2 ranks) and one row north (2 ranks) per z-plane:
  // 4 * 8 = 32 per sweep.  run_lu performs one extra ssor_iter before the
  // loop and two final_verify halo exchanges.
  lu::LuConfig cfg;
  cfg.n = 8;
  cfg.iterations = 2;
  const auto r = lu::run_lu(cfg, 4);
  const std::size_t per_iter = 8u + 32u + 32u;
  EXPECT_EQ(r.run.messages, 2u * per_iter + 8u + 2u * 8u);
}

}  // namespace
}  // namespace kcoup::npb
