// Structural tests of the host-measured parallel BT study.  Host timings
// are noisy, so these assert structure and sanity bounds, not exact values.

#include <gtest/gtest.h>

#include "npb/bt/bt_measured.hpp"
#include "npb/lu/lu_measured.hpp"
#include "npb/sp/sp_measured.hpp"
#include "trace/stopwatch.hpp"

namespace kcoup::npb::bt {
namespace {

TEST(ThreadCpuTimerTest, MeasuresOwnWorkOnly) {
  trace::ThreadCpuTimer t;
  // Burn a little CPU.
  volatile double x = 1.0;
  for (int i = 0; i < 2000000; ++i) x = x * 1.0000001 + 1e-9;
  const double busy = t.elapsed_s();
  EXPECT_GT(busy, 0.0);
  EXPECT_LT(busy, 5.0);
  t.restart();
  EXPECT_LT(t.elapsed_s(), busy + 1.0);
}

TEST(BtMeasuredTest, StudyProducesSaneStructure) {
  BtConfig cfg;
  cfg.n = 8;
  cfg.iterations = 10;
  simmpi::NetworkParams net;
  net.latency_s = 1e-5;
  const coupling::StudyOptions study{{2}, {10, 2}};
  const coupling::ParallelStudyResult r =
      run_bt_measured_study(cfg, 4, net, study);

  ASSERT_EQ(r.isolated_means.size(), 5u);
  for (double m : r.isolated_means) {
    EXPECT_GT(m, 0.0);
    EXPECT_LT(m, 10.0);  // an 8^3 kernel invocation is far below 10 s
  }
  EXPECT_GT(r.actual_s, 0.0);
  ASSERT_EQ(r.by_length.size(), 1u);
  ASSERT_EQ(r.by_length[0].chains.size(), 5u);
  for (const auto& c : r.by_length[0].chains) {
    // Host noise allows wide bounds, but a coupling value outside these
    // indicates a measurement-protocol bug, not noise.
    EXPECT_GT(c.coupling(), 0.2) << c.label;
    EXPECT_LT(c.coupling(), 5.0) << c.label;
  }
}

TEST(BtMeasuredTest, SolverStillConvergesUnderMeasurement) {
  // The measurement protocol runs kernels in unusual orders (isolated
  // loops, partial chains); the final full-application pass must still be
  // a numerically sane run.
  BtConfig cfg;
  cfg.n = 8;
  cfg.iterations = 30;
  simmpi::NetworkParams net;
  coupling::ParallelStudyResult unused;
  (void)simmpi::run(4, net, [&](simmpi::Comm& comm) {
    BtRank rank(cfg, comm);
    const auto app = make_measured_bt_app(rank, cfg.iterations, comm);
    // A full application pass through the app bodies:
    app.reset();
    for (const auto& k : app.prologue) k.body();
    for (int it = 0; it < cfg.iterations; ++it) {
      for (const auto& k : app.loop) k.body();
    }
    const double err = rank.final_verify();
    EXPECT_LT(err, 1e-2);
  });
  (void)unused;
}

TEST(SpMeasuredTest, StudyProducesSaneStructure) {
  sp::SpConfig cfg;
  cfg.n = 8;
  cfg.iterations = 8;
  const coupling::StudyOptions study{{2}, {8, 2}};
  const auto r = sp::run_sp_measured_study(cfg, 4, {}, study);
  ASSERT_EQ(r.isolated_means.size(), 6u);
  for (double m : r.isolated_means) EXPECT_GT(m, 0.0);
  ASSERT_EQ(r.by_length[0].chains.size(), 6u);
}

TEST(LuMeasuredTest, StudyProducesSaneStructure) {
  lu::LuConfig cfg;
  cfg.n = 8;
  cfg.iterations = 8;
  const coupling::StudyOptions study{{3}, {8, 2}};
  const auto r = lu::run_lu_measured_study(cfg, 4, {}, study);
  ASSERT_EQ(r.isolated_means.size(), 4u);
  for (double m : r.isolated_means) EXPECT_GT(m, 0.0);
  ASSERT_EQ(r.by_length[0].chains.size(), 4u);
  for (const auto& c : r.by_length[0].chains) {
    EXPECT_GT(c.coupling(), 0.2) << c.label;
    EXPECT_LT(c.coupling(), 5.0) << c.label;
  }
}

}  // namespace
}  // namespace kcoup::npb::bt
