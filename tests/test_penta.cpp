// Unit and property tests for the scalar pentadiagonal line solver
// (npb/common/penta.hpp), including the distributed split-equivalence
// property the SP sweeps rely on: eliminating a line in chained chunks with
// the 2-state hand-off must reproduce the single-chunk solution exactly.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "npb/common/penta.hpp"

namespace kcoup::npb {
namespace {

/// Dense multiply of the penta system with x (reference check).
std::vector<double> penta_apply(const std::vector<PentaRow>& rows,
                                const std::vector<double>& x) {
  const int n = static_cast<int>(rows.size());
  std::vector<double> b(rows.size(), 0.0);
  for (int m = 0; m < n; ++m) {
    const PentaRow& r = rows[static_cast<std::size_t>(m)];
    double s = r.c * x[static_cast<std::size_t>(m)];
    if (m >= 2) s += r.a * x[static_cast<std::size_t>(m - 2)];
    if (m >= 1) s += r.b * x[static_cast<std::size_t>(m - 1)];
    if (m + 1 < n) s += r.d * x[static_cast<std::size_t>(m + 1)];
    if (m + 2 < n) s += r.e * x[static_cast<std::size_t>(m + 2)];
    b[static_cast<std::size_t>(m)] = s;
  }
  return b;
}

std::vector<PentaRow> random_system(int n, std::mt19937& rng) {
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<PentaRow> rows(static_cast<std::size_t>(n));
  for (int m = 0; m < n; ++m) {
    PentaRow& r = rows[static_cast<std::size_t>(m)];
    r.a = m >= 2 ? 0.4 * dist(rng) : 0.0;
    r.b = m >= 1 ? 0.6 * dist(rng) : 0.0;
    r.d = m + 1 < n ? 0.6 * dist(rng) : 0.0;
    r.e = m + 2 < n ? 0.4 * dist(rng) : 0.0;
    // Strict diagonal dominance keeps the elimination stable.
    r.c = 2.5 + std::fabs(r.a) + std::fabs(r.b) + std::fabs(r.d) +
          std::fabs(r.e);
    r.r = dist(rng) * 3.0;
  }
  return rows;
}

TEST(PentaTest, SolvesTridiagonalSpecialCase) {
  // a = e = 0 reduces to tridiagonal; compare against the Thomas solution
  // of a small known system:  [2 -1; -1 2 -1; -1 2] x = [1 0 1].
  std::vector<PentaRow> rows(3);
  rows[0] = PentaRow{0, 0, 2, -1, 0, 1};
  rows[1] = PentaRow{0, -1, 2, -1, 0, 0};
  rows[2] = PentaRow{0, -1, 2, 0, 0, 1};
  std::vector<double> x(3);
  std::vector<PentaState> scratch(3);
  penta_solve_line(rows, x, scratch);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
  EXPECT_NEAR(x[2], 1.0, 1e-12);
}

class PentaPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PentaPropertyTest, SolutionSatisfiesSystem) {
  const int n = GetParam();
  std::mt19937 rng(static_cast<unsigned>(1000 + n));
  for (int trial = 0; trial < 5; ++trial) {
    auto rows = random_system(n, rng);
    std::vector<double> x(static_cast<std::size_t>(n));
    std::vector<PentaState> scratch(static_cast<std::size_t>(n));
    std::vector<double> rhs(static_cast<std::size_t>(n));
    for (int m = 0; m < n; ++m) rhs[static_cast<std::size_t>(m)] = rows[static_cast<std::size_t>(m)].r;
    penta_solve_line(rows, x, scratch);
    const auto back = penta_apply(rows, x);
    for (int m = 0; m < n; ++m) {
      EXPECT_NEAR(back[static_cast<std::size_t>(m)],
                  rhs[static_cast<std::size_t>(m)], 1e-9)
          << "n=" << n << " m=" << m;
    }
  }
}

TEST_P(PentaPropertyTest, ChunkedEliminationMatchesWholeLine) {
  const int n = GetParam();
  if (n < 6) GTEST_SKIP() << "need at least 3 chunks of 2";
  std::mt19937 rng(static_cast<unsigned>(77 + n));
  auto rows = random_system(n, rng);

  // Reference: single-chunk solve.
  std::vector<double> x_ref(static_cast<std::size_t>(n));
  {
    std::vector<PentaState> scratch(static_cast<std::size_t>(n));
    auto rows_copy = rows;
    penta_solve_line(rows_copy, x_ref, scratch);
  }

  // Chunked: three ranks with the 2-state forward / 2-value backward
  // hand-off exactly as SpRank::y_solve performs it.
  const int c0 = n / 3, c1 = n / 3;
  const int c2 = n - c0 - c1;
  std::vector<PentaState> states(static_cast<std::size_t>(n));
  auto span_rows = [&](int begin, int count) {
    return std::span<const PentaRow>(rows).subspan(
        static_cast<std::size_t>(begin), static_cast<std::size_t>(count));
  };
  auto span_states = [&](int begin, int count) {
    return std::span<PentaState>(states).subspan(
        static_cast<std::size_t>(begin), static_cast<std::size_t>(count));
  };
  auto [a2, a1] = penta_forward(span_rows(0, c0), PentaState{}, PentaState{},
                                span_states(0, c0));
  auto [b2, b1] =
      penta_forward(span_rows(c0, c1), a2, a1, span_states(c0, c1));
  auto [z2, z1] = penta_forward(span_rows(c0 + c1, c2), b2, b1,
                                span_states(c0 + c1, c2));
  (void)z2;
  (void)z1;

  std::vector<double> x(static_cast<std::size_t>(n));
  auto span_cstates = [&](int begin, int count) {
    return std::span<const PentaState>(states).subspan(
        static_cast<std::size_t>(begin), static_cast<std::size_t>(count));
  };
  auto span_x = [&](int begin, int count) {
    return std::span<double>(x).subspan(static_cast<std::size_t>(begin),
                                        static_cast<std::size_t>(count));
  };
  auto [x2a, x2b] = penta_backward(span_cstates(c0 + c1, c2), 0.0, 0.0,
                                   span_x(c0 + c1, c2));
  auto [x1a, x1b] =
      penta_backward(span_cstates(c0, c1), x2a, x2b, span_x(c0, c1));
  (void)penta_backward(span_cstates(0, c0), x1a, x1b, span_x(0, c0));

  for (int m = 0; m < n; ++m) {
    EXPECT_NEAR(x[static_cast<std::size_t>(m)],
                x_ref[static_cast<std::size_t>(m)], 1e-10)
        << "n=" << n << " m=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(LineLengths, PentaPropertyTest,
                         ::testing::Values(5, 6, 7, 9, 12, 16, 33, 64, 101));

}  // namespace
}  // namespace kcoup::npb
