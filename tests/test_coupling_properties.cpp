// Property tests of the coupling algebra over randomized synthetic
// applications, plus invariants of the NPB work models across every
// (benchmark, class, rank-count) configuration in the paper.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>

#include "coupling/analysis.hpp"
#include "coupling/kernel.hpp"
#include "coupling/study.hpp"
#include "machine/config.hpp"
#include "npb/bt/bt_model.hpp"
#include "npb/lu/lu_model.hpp"
#include "npb/sp/sp_model.hpp"

namespace kcoup {
namespace {

coupling::ChainCoupling synth_chain(std::size_t start, std::size_t length,
                                    std::size_t loop, double p_chain,
                                    double p_sum) {
  coupling::ChainCoupling c;
  c.start = start;
  c.length = length;
  for (std::size_t i = 0; i < length; ++i) c.members.push_back((start + i) % loop);
  c.chain_time = p_chain;
  c.isolated_sum = p_sum;
  return c;
}

class CouplingAlgebraFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(CouplingAlgebraFuzz, CoefficientsAreConvexCombinationsOfCouplings) {
  // alpha_k is a weighted average of the couplings of the chains containing
  // kernel k, so it must lie within their [min, max] for any data.
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> time_dist(0.1, 10.0);
  std::uniform_real_distribution<double> coup_dist(0.5, 1.5);
  for (std::size_t n : {3u, 4u, 5u, 6u}) {
    for (std::size_t q = 2; q <= n; ++q) {
      std::vector<coupling::ChainCoupling> chains;
      for (std::size_t s = 0; s < n; ++s) {
        const double sum = time_dist(rng);
        chains.push_back(synth_chain(s, q, n, coup_dist(rng) * sum, sum));
      }
      const auto alpha = coupling::coupling_coefficients(n, chains);
      for (std::size_t k = 0; k < n; ++k) {
        double lo = 1e300, hi = -1e300;
        for (const auto& c : chains) {
          if (!c.contains(k)) continue;
          lo = std::min(lo, c.coupling());
          hi = std::max(hi, c.coupling());
        }
        EXPECT_GE(alpha[k], lo - 1e-12) << "n=" << n << " q=" << q;
        EXPECT_LE(alpha[k], hi + 1e-12) << "n=" << n << " q=" << q;
      }
      // The unweighted variant obeys the same bounds.
      const auto flat = coupling::coupling_coefficients_unweighted(n, chains);
      for (std::size_t k = 0; k < n; ++k) {
        double lo = 1e300, hi = -1e300;
        for (const auto& c : chains) {
          if (!c.contains(k)) continue;
          lo = std::min(lo, c.coupling());
          hi = std::max(hi, c.coupling());
        }
        EXPECT_GE(flat[k], lo - 1e-12);
        EXPECT_LE(flat[k], hi + 1e-12);
      }
    }
  }
}

TEST_P(CouplingAlgebraFuzz, UniformCouplingScalesSummation) {
  // If every chain has the same coupling value C, then every coefficient is
  // C and the loop part of the prediction is exactly C times summation's.
  std::mt19937 rng(GetParam() + 77);
  std::uniform_real_distribution<double> c_dist(0.6, 1.4);
  std::uniform_real_distribution<double> t_dist(0.5, 4.0);
  const double cval = c_dist(rng);
  const std::size_t n = 5, q = 3;
  std::vector<coupling::ChainCoupling> chains;
  for (std::size_t s = 0; s < n; ++s) {
    const double sum = t_dist(rng);
    chains.push_back(synth_chain(s, q, n, cval * sum, sum));
  }
  coupling::PredictionInputs in;
  for (std::size_t k = 0; k < n; ++k) in.isolated_means.push_back(t_dist(rng));
  in.iterations = 17;
  const double summ = coupling::summation_prediction(in);
  const double coup = coupling::coupling_prediction(in, chains);
  EXPECT_NEAR(coup, cval * summ, 1e-9 * summ);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CouplingAlgebraFuzz,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

/// Work-model invariants across every paper configuration.
struct ModelCase {
  npb::Benchmark bench;
  npb::ProblemClass cls;
  int ranks;
};

class WorkModelInvariants : public ::testing::TestWithParam<ModelCase> {};

TEST_P(WorkModelInvariants, ProfilesAreWellFormed) {
  const ModelCase& mc = GetParam();
  std::unique_ptr<npb::ModeledApp> m;
  switch (mc.bench) {
    case npb::Benchmark::kBT:
      m = npb::bt::make_modeled_bt(mc.cls, mc.ranks, machine::ibm_sp_p2sc());
      break;
    case npb::Benchmark::kSP:
      m = npb::sp::make_modeled_sp(mc.cls, mc.ranks, machine::ibm_sp_p2sc());
      break;
    case npb::Benchmark::kLU:
      m = npb::lu::make_modeled_lu(mc.cls, mc.ranks, machine::ibm_sp_p2sc());
      break;
  }
  std::vector<coupling::Kernel*> all;
  for (auto* k : m->app().prologue) all.push_back(k);
  for (auto* k : m->app().loop) all.push_back(k);
  for (auto* k : m->app().epilogue) all.push_back(k);
  for (coupling::Kernel* k : all) {
    auto* mk = dynamic_cast<coupling::ModeledKernel*>(k);
    ASSERT_NE(mk, nullptr);
    const machine::WorkProfile& p = mk->profile();
    EXPECT_GT(p.flops, 0.0) << p.label;
    EXPECT_GT(p.total_bytes(), 0u) << p.label;
    EXPECT_GE(p.pipeline_stages, 1u) << p.label;
    for (const auto& a : p.accesses) {
      EXPECT_LT(a.region, m->machine().cache().region_count()) << p.label;
      EXPECT_GE(a.fresh_fraction, 0.0) << p.label;
      EXPECT_LE(a.fresh_fraction, 1.0) << p.label;
    }
    for (const auto& msg : p.messages) {
      if (msg.count > 0) {
        EXPECT_GT(msg.bytes_each, 0u) << p.label;
      }
    }
    // Kernel invocation must cost positive time and be finite.
    m->machine().reset_state();
    const double t = mk->invoke();
    EXPECT_GT(t, 0.0) << p.label;
    EXPECT_TRUE(std::isfinite(t)) << p.label;
  }
}

TEST_P(WorkModelInvariants, MoreRanksLessPerRankTime) {
  const ModelCase& mc = GetParam();
  if (mc.ranks < 4) GTEST_SKIP();
  auto make = [&](int p) {
    switch (mc.bench) {
      case npb::Benchmark::kBT:
        return npb::bt::make_modeled_bt(mc.cls, p, machine::ibm_sp_p2sc());
      case npb::Benchmark::kSP:
        return npb::sp::make_modeled_sp(mc.cls, p, machine::ibm_sp_p2sc());
      default:
        return npb::lu::make_modeled_lu(mc.cls, p, machine::ibm_sp_p2sc());
    }
  };
  auto total = [&](int p) {
    auto m = make(p);
    coupling::MeasurementHarness h(&m->app(), {5, 1});
    return h.actual_total();
  };
  // Strong scaling: the per-rank modeled time at the paper's largest rank
  // count is below the smallest's.
  const int small = mc.bench == npb::Benchmark::kLU ? 4 : 4;
  EXPECT_LT(total(mc.ranks), total(small) * 1.01);
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, WorkModelInvariants,
    ::testing::Values(
        ModelCase{npb::Benchmark::kBT, npb::ProblemClass::kS, 4},
        ModelCase{npb::Benchmark::kBT, npb::ProblemClass::kS, 16},
        ModelCase{npb::Benchmark::kBT, npb::ProblemClass::kW, 9},
        ModelCase{npb::Benchmark::kBT, npb::ProblemClass::kW, 25},
        ModelCase{npb::Benchmark::kBT, npb::ProblemClass::kA, 16},
        ModelCase{npb::Benchmark::kSP, npb::ProblemClass::kW, 4},
        ModelCase{npb::Benchmark::kSP, npb::ProblemClass::kA, 9},
        ModelCase{npb::Benchmark::kSP, npb::ProblemClass::kB, 25},
        ModelCase{npb::Benchmark::kLU, npb::ProblemClass::kW, 8},
        ModelCase{npb::Benchmark::kLU, npb::ProblemClass::kA, 16},
        ModelCase{npb::Benchmark::kLU, npb::ProblemClass::kB, 32}),
    [](const ::testing::TestParamInfo<ModelCase>& param) {
      return npb::to_string(param.param.bench) +
             npb::to_string(param.param.cls) + "P" +
             std::to_string(param.param.ranks);
    });

}  // namespace
}  // namespace kcoup
