// Tests for the paper's coupling algebra: the C_S definition (eqs. 1-2),
// the weighted-average coefficients of section 3 (validated against the
// paper's explicit four-kernel expansions for chain lengths 2 and 3), the
// measurement harness semantics, and the two predictors.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <vector>

#include "coupling/analysis.hpp"
#include "coupling/kernel.hpp"
#include "coupling/measurement.hpp"
#include "coupling/study.hpp"

namespace kcoup::coupling {
namespace {

/// A kernel with a constant isolated cost plus a discount applied when the
/// previous invocation in the environment was a different kernel — a
/// controllable stand-in for cache-coupled kernels.
class SyntheticEnv {
 public:
  double invoke(int id, double base, double chain_discount) {
    const double t = (prev_ != -1 && prev_ != id) ? base - chain_discount : base;
    prev_ = id;
    return t;
  }
  void reset() { prev_ = -1; }

 private:
  int prev_ = -1;
};

struct SyntheticApp {
  SyntheticEnv env;
  std::vector<std::unique_ptr<CallableKernel>> kernels;
  LoopApplication app;

  SyntheticApp(const std::vector<std::pair<double, double>>& spec,
               int iterations) {
    for (std::size_t i = 0; i < spec.size(); ++i) {
      const auto [base, discount] = spec[i];
      kernels.push_back(std::make_unique<CallableKernel>(
          "K" + std::to_string(i), [this, i, base = base,
                                    discount = discount] {
            return env.invoke(static_cast<int>(i), base, discount);
          }));
      app.loop.push_back(kernels.back().get());
    }
    app.name = "synthetic";
    app.iterations = iterations;
    app.reset = [this] { env.reset(); };
  }
};

TEST(MeasurementTest, IsolatedMeanIsSteadyState) {
  SyntheticApp s({{10.0, 2.0}, {20.0, 4.0}}, 5);
  MeasurementHarness h(&s.app, MeasurementOptions{10, 2});
  // Isolated loops never alternate kernels, so no discount applies.
  EXPECT_DOUBLE_EQ(h.isolated_mean(0), 10.0);
  EXPECT_DOUBLE_EQ(h.isolated_mean(1), 20.0);
}

TEST(MeasurementTest, ChainMeanSeesInteraction) {
  SyntheticApp s({{10.0, 2.0}, {20.0, 4.0}}, 5);
  MeasurementHarness h(&s.app, MeasurementOptions{10, 2});
  // In the pair loop both kernels always follow the other: 8 + 16 = 24.
  EXPECT_DOUBLE_EQ(h.chain_mean(0, 2), 24.0);
}

TEST(MeasurementTest, ChainWrapsCyclically) {
  SyntheticApp s({{1.0, 0.0}, {2.0, 0.0}, {4.0, 0.0}}, 1);
  MeasurementHarness h(&s.app, MeasurementOptions{4, 1});
  // Chain of length 2 starting at the last kernel wraps to the first.
  EXPECT_DOUBLE_EQ(h.chain_mean(2, 2), 5.0);
}

TEST(MeasurementTest, InvalidArgumentsThrow) {
  SyntheticApp s({{1.0, 0.0}}, 1);
  MeasurementHarness h(&s.app, MeasurementOptions{2, 0});
  EXPECT_THROW((void)h.chain_mean(0, 0), std::invalid_argument);
  EXPECT_THROW((void)h.chain_mean(0, 2), std::invalid_argument);
  EXPECT_THROW((void)h.chain_mean(5, 1), std::invalid_argument);
}

TEST(MeasurementTest, ActualTotalCountsEverything) {
  SyntheticApp s({{1.0, 0.0}, {2.0, 0.0}}, 10);
  MeasurementHarness h(&s.app, MeasurementOptions{3, 1});
  EXPECT_DOUBLE_EQ(h.actual_total(), 30.0);
}

TEST(MeasurementTest, EpilogueStatsHonourEpilogueRepetitions) {
  SyntheticApp s({{1.0, 0.0}}, 2);
  int epilogue_calls = 0;
  CallableKernel final("final", [&epilogue_calls] {
    ++epilogue_calls;
    return 7.0;
  });
  s.app.epilogue.push_back(&final);

  MeasurementOptions options;
  options.repetitions = 50;  // must NOT drive the epilogue sample count
  options.epilogue_repetitions = 5;
  MeasurementHarness h(&s.app, options);
  const trace::RunningStats stats = h.epilogue_stats(0);
  EXPECT_EQ(stats.count(), 5u);
  EXPECT_EQ(epilogue_calls, 5);
  EXPECT_DOUBLE_EQ(stats.mean(), 7.0);
}

TEST(CouplingValueTest, NoInteractionGivesUnity) {
  SyntheticApp s({{3.0, 0.0}, {5.0, 0.0}, {7.0, 0.0}}, 2);
  MeasurementHarness h(&s.app, MeasurementOptions{5, 1});
  const auto means = h.all_isolated_means();
  const auto chains = measure_chains(h, 2, means);
  ASSERT_EQ(chains.size(), 3u);
  for (const auto& c : chains) {
    EXPECT_DOUBLE_EQ(c.coupling(), 1.0) << c.label;
  }
}

TEST(CouplingValueTest, ConstructiveCouplingBelowOne) {
  SyntheticApp s({{10.0, 2.0}, {10.0, 2.0}}, 2);
  MeasurementHarness h(&s.app, MeasurementOptions{5, 1});
  const auto means = h.all_isolated_means();
  const auto chains = measure_chains(h, 2, means);
  // P_S = 16, sum P_k = 20 -> C = 0.8.
  EXPECT_DOUBLE_EQ(chains[0].coupling(), 0.8);
}

TEST(CouplingValueTest, DestructiveCouplingAboveOne) {
  SyntheticApp s({{10.0, -3.0}, {10.0, -3.0}}, 2);
  MeasurementHarness h(&s.app, MeasurementOptions{5, 1});
  const auto means = h.all_isolated_means();
  const auto chains = measure_chains(h, 2, means);
  EXPECT_DOUBLE_EQ(chains[0].coupling(), 1.3);
}

TEST(CouplingValueTest, ChainMembersAndLabels) {
  SyntheticApp s({{1, 0}, {1, 0}, {1, 0}, {1, 0}}, 1);
  MeasurementHarness h(&s.app, MeasurementOptions{2, 0});
  const auto means = h.all_isolated_means();
  const auto chains = measure_chains(h, 3, means);
  ASSERT_EQ(chains.size(), 4u);
  EXPECT_EQ(chains[0].members, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(chains[3].members, (std::vector<std::size_t>{3, 0, 1}));
  EXPECT_EQ(chains[0].label, "K0, K1, K2");
  EXPECT_TRUE(chains[1].contains(3));
  EXPECT_FALSE(chains[0].contains(3));
}

/// Build a synthetic ChainCoupling directly (for algebra-only tests).
ChainCoupling make_chain(std::vector<std::size_t> members, double p_chain,
                         double p_sum) {
  ChainCoupling c;
  c.start = members.front();
  c.length = members.size();
  c.members = std::move(members);
  c.chain_time = p_chain;
  c.isolated_sum = p_sum;
  return c;
}

TEST(CoefficientTest, MatchesPaperPairwiseExpansion) {
  // Paper section 3, four kernels A,B,C,D with pairwise couplings:
  //   alpha = (C_AB P_AB + C_DA P_DA) / (P_AB + P_DA)   etc.
  const double p_ab = 3.0, p_bc = 5.0, p_cd = 7.0, p_da = 11.0;
  const double s_ab = 4.0, s_bc = 4.5, s_cd = 8.0, s_da = 10.0;
  std::vector<ChainCoupling> chains{
      make_chain({0, 1}, p_ab, s_ab),
      make_chain({1, 2}, p_bc, s_bc),
      make_chain({2, 3}, p_cd, s_cd),
      make_chain({3, 0}, p_da, s_da),
  };
  const auto alpha = coupling_coefficients(4, chains);
  const double c_ab = p_ab / s_ab, c_bc = p_bc / s_bc, c_cd = p_cd / s_cd,
               c_da = p_da / s_da;
  EXPECT_NEAR(alpha[0], (c_ab * p_ab + c_da * p_da) / (p_ab + p_da), 1e-14);
  EXPECT_NEAR(alpha[1], (c_ab * p_ab + c_bc * p_bc) / (p_ab + p_bc), 1e-14);
  EXPECT_NEAR(alpha[2], (c_bc * p_bc + c_cd * p_cd) / (p_bc + p_cd), 1e-14);
  EXPECT_NEAR(alpha[3], (c_cd * p_cd + c_da * p_da) / (p_cd + p_da), 1e-14);
}

TEST(CoefficientTest, MatchesPaperThreeChainExpansion) {
  // Paper section 3, chain length 3 over A,B,C,D:
  //   alpha = (C_ABC P_ABC + C_CDA P_CDA + C_DAB P_DAB)
  //           / (P_ABC + P_CDA + P_DAB)
  const double p[4] = {3.0, 5.0, 7.0, 11.0};   // P_ABC, P_BCD, P_CDA, P_DAB
  const double s[4] = {4.0, 4.5, 8.0, 10.0};
  std::vector<ChainCoupling> chains{
      make_chain({0, 1, 2}, p[0], s[0]),
      make_chain({1, 2, 3}, p[1], s[1]),
      make_chain({2, 3, 0}, p[2], s[2]),
      make_chain({3, 0, 1}, p[3], s[3]),
  };
  const auto alpha = coupling_coefficients(4, chains);
  auto c = [&](int i) { return p[i] / s[i]; };
  EXPECT_NEAR(alpha[0],
              (c(0) * p[0] + c(2) * p[2] + c(3) * p[3]) / (p[0] + p[2] + p[3]),
              1e-14);
  EXPECT_NEAR(alpha[1],
              (c(0) * p[0] + c(1) * p[1] + c(3) * p[3]) / (p[0] + p[1] + p[3]),
              1e-14);
  EXPECT_NEAR(alpha[2],
              (c(0) * p[0] + c(1) * p[1] + c(2) * p[2]) / (p[0] + p[1] + p[2]),
              1e-14);
  EXPECT_NEAR(alpha[3],
              (c(1) * p[1] + c(2) * p[2] + c(3) * p[3]) / (p[1] + p[2] + p[3]),
              1e-14);
}

TEST(CoefficientTest, UnityCouplingsGiveUnityCoefficients) {
  std::vector<ChainCoupling> chains{
      make_chain({0, 1}, 6.0, 6.0),
      make_chain({1, 0}, 9.0, 9.0),
  };
  const auto alpha = coupling_coefficients(2, chains);
  EXPECT_DOUBLE_EQ(alpha[0], 1.0);
  EXPECT_DOUBLE_EQ(alpha[1], 1.0);
}

TEST(PredictorTest, SummationMatchesPaperFormula) {
  // Summation = Tinit + I * (sum of kernel means) + Tfinal  (section 4.1).
  PredictionInputs in;
  in.isolated_means = {1.0, 2.0, 3.0};
  in.prologue_s = 10.0;
  in.epilogue_s = 5.0;
  in.iterations = 60;
  EXPECT_DOUBLE_EQ(summation_prediction(in), 10.0 + 60.0 * 6.0 + 5.0);
}

TEST(PredictorTest, CouplingPredictionExactForHomogeneousKernels) {
  // Identical kernels with a uniform chain discount: every pairwise
  // coupling is identical and the coupling predictor is exact.
  SyntheticApp s({{10.0, 2.0}, {10.0, 2.0}, {10.0, 2.0}}, 50);
  const StudyOptions options{{2}, MeasurementOptions{8, 2}};
  const StudyResult r = run_study(s.app, options);
  ASSERT_EQ(r.by_length.size(), 1u);
  // Exact up to the cold first invocation of the measured run.
  EXPECT_LT(r.by_length[0].relative_error, 0.005);
  EXPECT_GT(r.summation_error, 0.2);  // ~30 predicted vs ~24 actual
}

TEST(PredictorTest, CouplingPredictionNearExactForHeterogeneousKernels) {
  SyntheticApp s({{10.0, 2.0}, {12.0, 2.0}, {14.0, 2.0}}, 50);
  const StudyOptions options{{2, 3}, MeasurementOptions{8, 2}};
  const StudyResult r = run_study(s.app, options);
  for (const auto& cl : r.by_length) {
    EXPECT_LT(cl.relative_error, 0.01) << "q=" << cl.length;
  }
  EXPECT_GT(r.summation_error, 0.05);  // summation misses the discounts
}

TEST(PredictorTest, BestSelectsSmallestError) {
  StudyResult r;
  r.by_length.push_back(ChainLengthResult{2, {}, {}, 0.0, 0.10});
  r.by_length.push_back(ChainLengthResult{3, {}, {}, 0.0, 0.02});
  r.by_length.push_back(ChainLengthResult{4, {}, {}, 0.0, 0.05});
  ASSERT_NE(r.best(), nullptr);
  EXPECT_EQ(r.best()->length, 3u);
}

TEST(ChainCouplingTest, ZeroIsolatedSumYieldsNaNNotInfinity) {
  // Regression: a chain whose kernels measured to exactly zero used to
  // divide by zero; C_S is undefined there and must report NaN.
  ChainCoupling c;
  c.chain_time = 1.0;
  c.isolated_sum = 0.0;
  EXPECT_TRUE(std::isnan(c.coupling()));
  c.isolated_sum = 2.0;
  EXPECT_DOUBLE_EQ(c.coupling(), 0.5);
}

TEST(AnalysisTest, AlphaPredictionMatchesCouplingPrediction) {
  // alpha_prediction with coefficients from coupling_coefficients must be
  // bit-identical to coupling_prediction over the same chains — it is the
  // serving layer's precomputed fast path.
  std::vector<ChainCoupling> chains;
  for (std::size_t start = 0; start < 3; ++start) {
    ChainCoupling c;
    c.start = start;
    c.length = 2;
    c.members = {start, (start + 1) % 3};
    c.chain_time = 1.5 + 0.25 * static_cast<double>(start);
    c.isolated_sum = 2.0;
    chains.push_back(c);
  }
  PredictionInputs in;
  in.isolated_means = {0.5, 0.75, 1.0};
  in.iterations = 7;
  in.prologue_s = 0.125;
  in.epilogue_s = 0.25;
  const std::vector<double> alpha = coupling_coefficients(3, chains);
  EXPECT_EQ(alpha_prediction(in, alpha), coupling_prediction(in, chains));
}

TEST(AnalysisTest, AlphaPredictionRejectsSizeMismatch) {
  PredictionInputs in;
  in.isolated_means = {1.0, 2.0};
  const std::vector<double> alpha{1.0};
  EXPECT_THROW((void)alpha_prediction(in, alpha), std::invalid_argument);
}

TEST(StudyTest, DeterministicAcrossRuns) {
  SyntheticApp s1({{10.0, 2.0}, {20.0, 1.0}}, 30);
  SyntheticApp s2({{10.0, 2.0}, {20.0, 1.0}}, 30);
  const StudyOptions options{{2}, MeasurementOptions{10, 2}};
  const StudyResult a = run_study(s1.app, options);
  const StudyResult b = run_study(s2.app, options);
  EXPECT_DOUBLE_EQ(a.actual_s, b.actual_s);
  EXPECT_DOUBLE_EQ(a.summation_s, b.summation_s);
  EXPECT_DOUBLE_EQ(a.by_length[0].prediction_s, b.by_length[0].prediction_s);
}

}  // namespace
}  // namespace kcoup::coupling
