// Randomized traffic tests for simmpi: deterministic results independent of
// host scheduling, over random communication patterns.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "simmpi/simmpi.hpp"

namespace kcoup::simmpi {
namespace {

/// A random but deadlock-free traffic schedule: a sequence of rounds; in
/// each round every rank sends one message to a derived peer and then
/// receives the matching message (send-before-receive is safe with
/// buffered channels).  The payloads and virtual advances are derived
/// deterministically from the seed, so every run must agree bit-for-bit.
struct Schedule {
  int ranks;
  int rounds;
  unsigned seed;
};

std::vector<double> run_schedule(const Schedule& s) {
  NetworkParams net;
  net.latency_s = 1e-5;
  net.seconds_per_byte = 1e-9;
  net.sync_latency_s = 1e-6;

  std::vector<double> checksums(static_cast<std::size_t>(s.ranks), 0.0);
  const RunResult rr = run(s.ranks, net, [&](Comm& c) {
    std::mt19937 rng(s.seed + 977u * static_cast<unsigned>(c.rank()));
    std::uniform_real_distribution<double> adv(0.0, 1e-4);
    double checksum = 0.0;
    for (int round = 0; round < s.rounds; ++round) {
      // Derived peer: a rotation that is a permutation for any shift.
      const int shift = 1 + (round % (s.ranks - 1));
      const int to = (c.rank() + shift) % s.ranks;
      const int from = (c.rank() - shift + s.ranks) % s.ranks;
      c.advance(adv(rng));
      const std::size_t len = 1 + static_cast<std::size_t>(round % 7);
      std::vector<double> out(len);
      for (std::size_t i = 0; i < len; ++i) {
        out[i] = c.rank() * 1000.0 + round + static_cast<double>(i) * 0.5;
      }
      c.send<double>(to, round, out);
      std::vector<double> in(len);
      c.recv<double>(from, round, in);
      for (double v : in) checksum += v;
      if (round % 5 == 4) checksum += c.allreduce_sum(checksum);
    }
    checksums[static_cast<std::size_t>(c.rank())] = checksum + c.now();
  });
  checksums.push_back(rr.makespan_s);
  checksums.push_back(static_cast<double>(rr.messages));
  checksums.push_back(static_cast<double>(rr.payload_bytes));
  return checksums;
}

class SimmpiFuzzTest
    : public ::testing::TestWithParam<std::tuple<int, unsigned>> {};

TEST_P(SimmpiFuzzTest, BitDeterministicAcrossRepeatedRuns) {
  const auto [ranks, seed] = GetParam();
  Schedule s{ranks, 25, seed};
  const auto a = run_schedule(s);
  const auto b = run_schedule(s);
  const auto c = run_schedule(s);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "rank/stat " << i;
    EXPECT_EQ(a[i], c[i]) << "rank/stat " << i;
  }
}

TEST_P(SimmpiFuzzTest, MessageAccountingConsistent) {
  const auto [ranks, seed] = GetParam();
  Schedule s{ranks, 10, seed};
  const auto stats = run_schedule(s);
  // messages = ranks * rounds (one send per rank per round).
  EXPECT_EQ(stats[stats.size() - 2], static_cast<double>(ranks * 10));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SimmpiFuzzTest,
    ::testing::Combine(::testing::Values(2, 3, 5, 8, 16),
                       ::testing::Values(7u, 42u)));

TEST(SimmpiStressTest, ManySmallMessagesThroughOneChannel) {
  const int count = 5000;
  const RunResult r = run(2, {}, [&](Comm& c) {
    std::vector<long> buf{0};
    if (c.rank() == 0) {
      for (long i = 0; i < count; ++i) {
        buf[0] = i;
        c.send<long>(1, 0, buf);
      }
    } else {
      for (long i = 0; i < count; ++i) {
        c.recv<long>(0, 0, buf);
        ASSERT_EQ(buf[0], i);  // strict FIFO under load
      }
    }
  });
  EXPECT_EQ(r.messages, static_cast<std::size_t>(count));
}

TEST(SimmpiStressTest, WideFanInPreservesPerChannelOrder) {
  const int ranks = 12;
  run(ranks, {}, [&](Comm& c) {
    if (c.rank() == 0) {
      for (int round = 0; round < 20; ++round) {
        for (int src = 1; src < ranks; ++src) {
          std::vector<int> v(2);
          c.recv<int>(src, 1, v);
          EXPECT_EQ(v[0], src);
          EXPECT_EQ(v[1], round);
        }
      }
    } else {
      for (int round = 0; round < 20; ++round) {
        const std::vector<int> v{c.rank(), round};
        c.send<int>(0, 1, v);
      }
    }
  });
}

}  // namespace
}  // namespace kcoup::simmpi
