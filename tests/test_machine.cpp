// Tests for the machine model: cache stack distances, the three pricing
// rules (cyclic scan, producer-fresh, streaming store), communication and
// synchronisation costs, and the presets.

#include <gtest/gtest.h>

#include "machine/cache_model.hpp"
#include "machine/config.hpp"
#include "machine/machine.hpp"

namespace kcoup::machine {
namespace {

MachineConfig tiny_machine() {
  MachineConfig c;
  c.name = "tiny";
  c.flops_per_second = 1e9;
  c.cache.push_back(CacheLevel{1000, 1e-9});   // "L1": 1000 bytes
  c.cache.push_back(CacheLevel{10000, 1e-8});  // "L2": 10000 bytes
  c.memory_seconds_per_byte = 1e-7;
  c.net_latency_s = 1e-6;
  c.net_seconds_per_byte = 1e-9;
  c.sync_latency_s = 1e-6;
  c.imbalance_coeff = 0.5;
  c.ranks = 1;
  return c;
}

std::size_t total_cached(const CacheModel::AccessCost& c) {
  std::size_t s = 0;
  for (auto b : c.level_bytes) s += b;
  return s;
}

TEST(CacheModelTest, CompulsoryMissGoesToMemory) {
  const MachineConfig cfg = tiny_machine();
  CacheModel cache(&cfg);
  const RegionId r = cache.register_region("a", 500);
  const CacheModel::AccessCost c =
      cache.access(0, kInvalidKernel, RegionAccess{r, AccessKind::kRead, 500},
                   0, 1);
  EXPECT_EQ(c.memory_bytes, 500u);
  EXPECT_EQ(total_cached(c), 0u);
}

TEST(CacheModelTest, SelfReuseHitsLevelThatFits) {
  const MachineConfig cfg = tiny_machine();
  CacheModel cache(&cfg);
  const RegionId r = cache.register_region("a", 500);
  const RegionAccess a{r, AccessKind::kRead, 500};
  (void)cache.access(0, kInvalidKernel, a, 0, 1);
  cache.end_invocation(0, 500);
  const auto c = cache.access(0, 0, a, 0, 1);
  // 500-byte region, zero intervening traffic: fits the 1000-byte L1.
  EXPECT_EQ(c.level_bytes[0], 500u);
  EXPECT_EQ(c.memory_bytes, 0u);
}

TEST(CacheModelTest, CyclicScanIsAllOrNothing) {
  const MachineConfig cfg = tiny_machine();
  CacheModel cache(&cfg);
  // A region larger than L1 but fitting L2: re-traversals never hit L1.
  const RegionId r = cache.register_region("big", 2000);
  const RegionAccess a{r, AccessKind::kRead, 2000};
  (void)cache.access(0, kInvalidKernel, a, 0, 1);
  const auto c = cache.access(0, 0, a, 0, 1);
  EXPECT_EQ(c.level_bytes[0], 0u);     // nothing from L1
  EXPECT_EQ(c.level_bytes[1], 2000u);  // everything from L2
}

TEST(CacheModelTest, InterveningTrafficEvicts) {
  const MachineConfig cfg = tiny_machine();
  CacheModel cache(&cfg);
  const RegionId a = cache.register_region("a", 600);
  const RegionId b = cache.register_region("b", 600);
  const RegionAccess ra{a, AccessKind::kRead, 600};
  const RegionAccess rb{b, AccessKind::kRead, 600};
  (void)cache.access(0, kInvalidKernel, ra, 0, 1);
  (void)cache.access(0, kInvalidKernel, rb, 600, 1);
  // Re-reading `a` now has 600 bytes of intervening traffic: 600 + 600
  // exceeds the 1000-byte L1, so the read comes from L2 entirely.
  const auto c = cache.access(0, 0, ra, 0, 1);
  EXPECT_EQ(c.level_bytes[0], 0u);
  EXPECT_EQ(c.level_bytes[1], 600u);
}

TEST(CacheModelTest, StackDistanceTracksRecency) {
  const MachineConfig cfg = tiny_machine();
  CacheModel cache(&cfg);
  const RegionId a = cache.register_region("a", 100);
  const RegionId b = cache.register_region("b", 200);
  EXPECT_EQ(cache.stack_distance(a), SIZE_MAX);
  (void)cache.access(0, kInvalidKernel, RegionAccess{a, AccessKind::kRead, 100}, 0, 1);
  (void)cache.access(0, kInvalidKernel, RegionAccess{b, AccessKind::kRead, 200}, 100, 1);
  EXPECT_EQ(cache.stack_distance(b), 0u);
  EXPECT_EQ(cache.stack_distance(a), 200u);
}

TEST(CacheModelTest, StreamingWritePricedByFootprint) {
  const MachineConfig cfg = tiny_machine();
  CacheModel cache(&cfg);
  const RegionId small = cache.register_region("small", 800);
  const RegionId large = cache.register_region("large", 5000);
  // First-touch writes: no read-for-ownership; priced by landing level.
  const auto c1 = cache.access(
      0, kInvalidKernel, RegionAccess{small, AccessKind::kWrite, 800}, 0, 1);
  EXPECT_EQ(c1.level_bytes[0], 800u);  // fits L1
  const auto c2 = cache.access(
      0, kInvalidKernel, RegionAccess{large, AccessKind::kWrite, 5000}, 0, 1);
  EXPECT_EQ(c2.level_bytes[1], 5000u);  // fits L2 only
}

TEST(CacheModelTest, ScratchBufferStreamsAtItsFootprintLevel) {
  const MachineConfig cfg = tiny_machine();
  CacheModel cache(&cfg);
  // 400-byte buffer streaming 100x its size: footprint, not traffic, decides.
  const RegionId buf = cache.register_region("buf", 400);
  (void)cache.access(0, kInvalidKernel,
                     RegionAccess{buf, AccessKind::kWrite, 40000}, 0, 1);
  const auto c =
      cache.access(0, 0, RegionAccess{buf, AccessKind::kRead, 40000}, 0, 1);
  EXPECT_EQ(c.level_bytes[0], 40000u);  // hot 400-byte buffer: all L1
  EXPECT_EQ(cache.stack_distance(buf), 0u);
}

TEST(CacheModelTest, FreshRuleRequiresImmediatePredecessor) {
  const MachineConfig cfg = tiny_machine();
  CacheModel cache(&cfg);
  const RegionId r = cache.register_region("data", 3000);  // > L1
  // Kernel 1 writes the region.
  (void)cache.access(1, kInvalidKernel,
                     RegionAccess{r, AccessKind::kWrite, 3000}, 0, 1);
  cache.end_invocation(1, 3000);

  // Kernel 2 reads it fresh with enough pipeline stages: window
  // (3000 + 3000) / 10 = 600 <= 1000 -> L1.
  RegionAccess read{r, AccessKind::kRead, 3000};
  read.fresh_fraction = 1.0;
  const auto hit = cache.access(2, /*prev=*/1, read, 0, 10);
  EXPECT_EQ(hit.level_bytes[0], 3000u);

  cache.end_invocation(2, 3000);
  // Kernel 3 runs after kernel 2 (which only read the region): the last
  // toucher is now kernel 2, so freshness applies relative to kernel 2...
  const auto hit2 = cache.access(3, /*prev=*/2, read, 0, 10);
  EXPECT_EQ(hit2.level_bytes[0], 3000u);
  cache.end_invocation(3, 3000);

  // ...but a kernel whose predecessor did NOT touch the region gets the
  // plain scan rule (3000-byte region -> L2, not L1).
  const RegionId other = cache.register_region("other", 100);
  (void)cache.access(4, 3, RegionAccess{other, AccessKind::kRead, 100}, 0, 1);
  cache.end_invocation(4, 100);
  const auto miss = cache.access(5, /*prev=*/4, read, 0, 10);
  EXPECT_EQ(miss.level_bytes[0], 0u);
  EXPECT_EQ(miss.level_bytes[1], 3000u);
}

TEST(CacheModelTest, IsolatedLoopNeverQualifiesAsFresh) {
  const MachineConfig cfg = tiny_machine();
  CacheModel cache(&cfg);
  const RegionId r = cache.register_region("data", 3000);
  RegionAccess read{r, AccessKind::kRead, 3000};
  read.fresh_fraction = 1.0;
  (void)cache.access(1, kInvalidKernel,
                     RegionAccess{r, AccessKind::kWrite, 3000}, 0, 1);
  cache.end_invocation(1, 3000);
  // Same kernel again: prev == self, so the fresh rule must not apply.
  const auto c = cache.access(1, /*prev=*/1, read, 0, 10);
  EXPECT_EQ(c.level_bytes[0], 0u);
  EXPECT_EQ(c.level_bytes[1], 3000u);
}

TEST(CacheModelTest, ResetColdStartsEverything) {
  const MachineConfig cfg = tiny_machine();
  CacheModel cache(&cfg);
  const RegionId r = cache.register_region("a", 500);
  (void)cache.access(0, kInvalidKernel, RegionAccess{r, AccessKind::kRead, 500}, 0, 1);
  cache.end_invocation(0, 500);
  cache.reset();
  EXPECT_EQ(cache.stack_distance(r), SIZE_MAX);
  EXPECT_EQ(cache.last_toucher(r), kInvalidKernel);
  const auto c = cache.access(0, kInvalidKernel,
                              RegionAccess{r, AccessKind::kRead, 500}, 0, 1);
  EXPECT_EQ(c.memory_bytes, 500u);
}

TEST(MachineTest, ComputeCostIsFlopsOverRate) {
  Machine m(tiny_machine());
  WorkProfile p;
  p.kernel = 0;
  p.flops = 2e9;
  const CostBreakdown c = m.execute(p);
  EXPECT_DOUBLE_EQ(c.compute_s, 2.0);
  EXPECT_DOUBLE_EQ(c.total(), 2.0);
}

TEST(MachineTest, MessageCostUsesAlphaBetaAndContention) {
  MachineConfig cfg = tiny_machine();
  cfg.ranks = 4;
  cfg.net_contention_coeff = 0.5;  // 1 + 0.5*log2(4) = 2
  Machine m(cfg);
  WorkProfile p;
  p.kernel = 0;
  p.messages = {MessageOp{2, 1000}};
  const CostBreakdown c = m.execute(p);
  const double expected = 2 * (1e-6 + 1000 * 1e-9 * 2.0);
  EXPECT_NEAR(c.comm_s, expected, 1e-15);
}

TEST(MachineTest, IsolatedLoopPaysNoSkewPenalty) {
  MachineConfig cfg = tiny_machine();
  cfg.ranks = 4;
  Machine m(cfg);
  WorkProfile p;
  p.kernel = 7;
  p.synchronizes = true;
  p.imbalance_weight = 1.0;
  p.messages = {MessageOp{4, 100}};
  (void)m.execute(p);  // first invocation: prev is invalid
  const CostBreakdown second = m.execute(p);  // prev == self
  // Only the base barrier cost remains (2 tree hops at 1us).
  EXPECT_DOUBLE_EQ(second.sync_s, 2e-6);
}

TEST(MachineTest, AlternatingKernelsPaySkewPenalty) {
  MachineConfig cfg = tiny_machine();
  cfg.ranks = 4;
  Machine m(cfg);
  WorkProfile a, b;
  a.kernel = 1;
  b.kernel = 2;
  for (WorkProfile* p : {&a, &b}) {
    p->synchronizes = true;
    p->imbalance_weight = 1.0;
    p->messages = {MessageOp{4, 100}};
  }
  (void)m.execute(a);
  const CostBreakdown cb = m.execute(b);
  EXPECT_GT(cb.sync_s, 2e-6);  // base barrier + decorrelation penalty
}

TEST(MachineTest, SingleRankHasNoSyncOrContention) {
  Machine m(tiny_machine());
  WorkProfile p;
  p.kernel = 0;
  p.synchronizes = true;
  p.imbalance_weight = 1.0;
  const CostBreakdown c = m.execute(p);
  EXPECT_DOUBLE_EQ(c.sync_s, 0.0);
}

TEST(MachineTest, SkewCorrelationProperties) {
  EXPECT_DOUBLE_EQ(Machine::skew_correlation(3, 3), 1.0);
  const double c12 = Machine::skew_correlation(1, 2);
  EXPECT_DOUBLE_EQ(Machine::skew_correlation(2, 1), c12);  // symmetric
  EXPECT_GE(c12, 0.0);
  EXPECT_LT(c12, 1.0);
  EXPECT_DOUBLE_EQ(Machine::skew_correlation(kInvalidKernel, 2), 0.0);
}

TEST(MachineTest, ResetStateRestoresColdBehaviour) {
  Machine m(tiny_machine());
  const RegionId r = m.register_region("a", 500);
  WorkProfile p;
  p.kernel = 0;
  p.accesses = {RegionAccess{r, AccessKind::kRead, 500}};
  const double cold = m.execute_seconds(p);
  const double warm = m.execute_seconds(p);
  EXPECT_LT(warm, cold);
  m.reset_state();
  EXPECT_DOUBLE_EQ(m.execute_seconds(p), cold);
}

TEST(MachineTest, CostBreakdownAccumulates) {
  CostBreakdown a, b;
  a.compute_s = 1;
  a.cache_s = {0.5};
  b.compute_s = 2;
  b.cache_s = {0.25, 0.75};
  b.memory_s = 3;
  a += b;
  EXPECT_DOUBLE_EQ(a.compute_s, 3.0);
  ASSERT_EQ(a.cache_s.size(), 2u);
  EXPECT_DOUBLE_EQ(a.cache_s[0], 0.75);
  EXPECT_DOUBLE_EQ(a.cache_s[1], 0.75);
  EXPECT_DOUBLE_EQ(a.memory_s, 3.0);
  EXPECT_DOUBLE_EQ(a.total(), 3 + 0.75 + 0.75 + 3);
}

TEST(PresetTest, IbmSpPresetIsWellFormed) {
  const MachineConfig c = ibm_sp_p2sc();
  EXPECT_GT(c.flops_per_second, 0.0);
  ASSERT_EQ(c.cache.size(), 2u);
  EXPECT_LT(c.cache[0].capacity_bytes, c.cache[1].capacity_bytes);
  EXPECT_LT(c.cache[0].seconds_per_byte, c.cache[1].seconds_per_byte);
  EXPECT_LT(c.cache[1].seconds_per_byte, c.memory_seconds_per_byte);
  EXPECT_GT(c.net_latency_s, 0.0);
}

TEST(PresetTest, AblationHelpers) {
  const MachineConfig base = ibm_sp_p2sc();
  EXPECT_EQ(without_l2(base).cache.size(), 1u);
  EXPECT_DOUBLE_EQ(without_contention(base).net_contention_coeff, 0.0);
  EXPECT_DOUBLE_EQ(without_imbalance(base).imbalance_coeff, 0.0);
  // Originals untouched.
  EXPECT_EQ(base.cache.size(), 2u);
}

}  // namespace
}  // namespace kcoup::machine
