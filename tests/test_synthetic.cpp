// Tests for the synthetic workload generator.

#include <gtest/gtest.h>

#include "coupling/study.hpp"
#include "coupling/synthetic.hpp"
#include "machine/config.hpp"

namespace kcoup::coupling {
namespace {

TEST(SyntheticTest, DeterministicForSeed) {
  SyntheticAppSpec spec;
  spec.seed = 9;
  auto a = make_synthetic_app(spec, machine::ibm_sp_p2sc());
  auto b = make_synthetic_app(spec, machine::ibm_sp_p2sc());
  const StudyOptions options{{2}, {}};
  const StudyResult ra = run_study(a->app(), options);
  const StudyResult rb = run_study(b->app(), options);
  EXPECT_EQ(ra.actual_s, rb.actual_s);
  EXPECT_EQ(ra.summation_s, rb.summation_s);
  EXPECT_EQ(ra.by_length[0].prediction_s, rb.by_length[0].prediction_s);
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  SyntheticAppSpec a_spec, b_spec;
  a_spec.seed = 1;
  b_spec.seed = 2;
  auto a = make_synthetic_app(a_spec, machine::ibm_sp_p2sc());
  auto b = make_synthetic_app(b_spec, machine::ibm_sp_p2sc());
  const StudyOptions options{{2}, {}};
  EXPECT_NE(run_study(a->app(), options).actual_s,
            run_study(b->app(), options).actual_s);
}

TEST(SyntheticTest, RespectsSpecShape) {
  SyntheticAppSpec spec;
  spec.kernels = 5;
  spec.regions = 7;
  spec.iterations = 33;
  auto app = make_synthetic_app(spec, machine::ibm_sp_p2sc());
  EXPECT_EQ(app->app().loop_size(), 5u);
  EXPECT_EQ(app->app().iterations, 33);
  EXPECT_EQ(app->machine().cache().region_count(), 7u);
}

TEST(SyntheticTest, AdjacentDataFlowExistsByConstruction) {
  // Kernel k always reads kernel k-1's output region, so a pair-chain study
  // must find at least one chain whose coupling differs from 1 (some
  // interaction) for a cache-stressing spec.
  SyntheticAppSpec spec;
  spec.seed = 4;
  spec.fresh_probability = 1.0;
  spec.min_region_bytes = 128 * 1024;  // beyond L1, inside L2
  spec.max_region_bytes = 512 * 1024;   // fresh windows land back in L1
  spec.min_flops = 1e4;                 // memory-bound kernels
  spec.max_flops = 1e6;
  spec.ranks = 1;
  auto app = make_synthetic_app(spec, machine::ibm_sp_p2sc());
  const StudyOptions options{{2}, {}};
  const StudyResult r = run_study(app->app(), options);
  bool any_interaction = false;
  for (const auto& c : r.by_length[0].chains) {
    if (std::abs(c.coupling() - 1.0) > 0.01) any_interaction = true;
  }
  EXPECT_TRUE(any_interaction);
}

TEST(SyntheticTest, RejectsDegenerateSpecs) {
  SyntheticAppSpec one;
  one.kernels = 1;
  EXPECT_THROW((void)make_synthetic_app(one, machine::ibm_sp_p2sc()),
               std::invalid_argument);
  SyntheticAppSpec few_regions;
  few_regions.kernels = 5;
  few_regions.regions = 3;
  EXPECT_THROW((void)make_synthetic_app(few_regions, machine::ibm_sp_p2sc()),
               std::invalid_argument);
}

}  // namespace
}  // namespace kcoup::coupling
