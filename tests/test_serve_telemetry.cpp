// End-to-end telemetry tests for the serve path: trace-context propagation
// (request ids echoed in responses and annotated on spans), the extended
// stats frame (rolling windows, source mix, drift), the Prometheus metrics
// op, the slow-request log, reload drift determinism, monotonic uptime, and
// byte-identity of predictions with telemetry on vs off.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "coupling/database.hpp"
#include "coupling/study.hpp"
#include "machine/config.hpp"
#include "npb/bt/bt_model.hpp"
#include "obs/trace.hpp"
#include "serve/client.hpp"
#include "serve/drift.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/slowlog.hpp"

#include "serve_format_env.hpp"

namespace kcoup {
namespace {

/// The same one-study fixture as test_serve_server.cpp: a BT class-S P=4
/// chain-2 study measured once per suite, persisted per test.
class TelemetryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    cfg_ = new machine::MachineConfig(machine::ibm_sp_p2sc());
    const auto modeled =
        npb::bt::make_modeled_bt(npb::ProblemClass::kS, 4, *cfg_);
    coupling::StudyOptions options;
    options.chain_lengths = {2};
    study_ = new coupling::StudyResult(
        coupling::run_study(modeled->app(), options));
  }

  static void TearDownTestSuite() {
    delete study_;
    delete cfg_;
    study_ = nullptr;
    cfg_ = nullptr;
  }

  void SetUp() override {
    obs::Tracer::instance().disable();
    obs::Tracer::instance().clear();
    path_ = std::filesystem::path(::testing::TempDir()) /
            ("kcoup_telemetry_db_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name() +
             ".csv");
    write_db(false);
    workload_ = std::make_unique<serve::NpbWorkload>(*cfg_);
    engine_ = std::make_unique<serve::QueryEngine>(workload_.get());
    source_ = std::make_unique<serve::SnapshotSource>(
        path_.string(), serve::CellFn{}, serve::SnapshotOptions{false});
    source_->load();
  }

  void TearDown() override {
    server_.reset();
    source_.reset();
    std::filesystem::remove(path_);
    obs::Tracer::instance().disable();
    obs::Tracer::instance().clear();
  }

  [[nodiscard]] coupling::CouplingDatabase make_db(bool with_extra) const {
    coupling::CouplingDatabase db;
    for (const auto& cl : study_->by_length) {
      for (const coupling::ChainCoupling& chain : cl.chains) {
        coupling::CouplingRecord r;
        r.key = {"BT", "S", 4, chain.length, chain.start};
        r.chain_time = chain.chain_time;
        r.isolated_sum = chain.isolated_sum;
        db.record(r);
      }
    }
    if (with_extra) {
      // A record at a rank count the original database lacks: the drift
      // check treats it as "newly measured" and scores the old snapshot's
      // nearest-donor prediction against it.
      coupling::CouplingRecord r;
      r.key = {"BT", "S", 9, 2, 0};
      r.chain_time = 0.125;
      r.isolated_sum = 0.100;
      db.record(r);
    }
    return db;
  }

  void write_db(bool with_extra) {
    test::save_db_in_env_format(make_db(with_extra), path_.string());
  }

  void start_server(serve::ServerConfig config = {}) {
    server_ = std::make_unique<serve::Server>(source_.get(), engine_.get(),
                                              config);
    server_->start();
  }

  serve::Client connect() {
    serve::Client client;
    client.connect("127.0.0.1", server_->port());
    return client;
  }

  static machine::MachineConfig* cfg_;
  static coupling::StudyResult* study_;

  std::filesystem::path path_;
  std::unique_ptr<serve::NpbWorkload> workload_;
  std::unique_ptr<serve::QueryEngine> engine_;
  std::unique_ptr<serve::SnapshotSource> source_;
  std::unique_ptr<serve::Server> server_;
};

machine::MachineConfig* TelemetryTest::cfg_ = nullptr;
coupling::StudyResult* TelemetryTest::study_ = nullptr;

// --- Protocol-level trace context -------------------------------------------

TEST(TraceContextProtocolTest, AttachSplicesBeforeClosingBrace) {
  EXPECT_EQ(serve::attach_trace_id("{\"ok\":true}", "t-1"),
            "{\"ok\":true,\"trace_id\":\"t-1\"}");
  // Empty id and non-JSON payloads pass through untouched.
  EXPECT_EQ(serve::attach_trace_id("{\"ok\":true}", ""), "{\"ok\":true}");
  EXPECT_EQ(serve::attach_trace_id("# TYPE x counter", "t-1"),
            "# TYPE x counter");
}

TEST(TraceContextProtocolTest, ParseTruncatesOversizedIds) {
  const std::string longid(3 * serve::kMaxTraceIdBytes, 'x');
  const auto request = serve::parse_request(serve::ping_request(longid));
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->trace_id.size(), serve::kMaxTraceIdBytes);
}

TEST(TraceContextProtocolTest, BuildersCarryTheId) {
  for (const std::string& payload :
       {serve::ping_request("id-1"), serve::stats_request("id-1"),
        serve::metrics_request("id-1"), serve::slowlog_request("id-1"),
        serve::predict_request({"BT", "S", 4, 2}, "id-1"),
        serve::batch_request({{"BT", "S", 4, 2}}, "id-1")}) {
    const auto request = serve::parse_request(payload);
    ASSERT_TRUE(request.has_value()) << payload;
    EXPECT_EQ(request->trace_id, "id-1") << payload;
  }
}

// --- Server-side propagation ------------------------------------------------

TEST_F(TelemetryTest, ResponsesEchoTheRequestTraceId) {
  start_server();
  serve::Client client = connect();
  for (const std::string& payload :
       {serve::ping_request("echo-7"), serve::stats_request("echo-7"),
        serve::slowlog_request("echo-7"),
        serve::predict_request({"BT", "S", 4, 2}, "echo-7")}) {
    const auto response = client.roundtrip(payload);
    ASSERT_TRUE(response.has_value()) << payload;
    EXPECT_NE(response->find("\"trace_id\":\"echo-7\""), std::string::npos)
        << *response;
  }
  // No id in, no id out.
  const auto bare = client.roundtrip(serve::ping_request());
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->find("trace_id"), std::string::npos);
}

TEST_F(TelemetryTest, ClientAndServerSpansShareTheTraceId) {
  // Client and server run in one process here, so both sides' spans land
  // in the same Tracer: the exported timeline must mention the id twice —
  // once from the client's "request" span, once from the server's.
  obs::Tracer::instance().enable();
  start_server();
  {
    serve::Client client = connect();
    client.set_trace_id("stitch-42");
    const auto p = client.predict({"BT", "S", 4, 2});
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(client.last_trace_id(), "stitch-42");
  }
  server_.reset();  // join shard threads so their rings are quiescent
  obs::Tracer::instance().disable();
  std::ostringstream out;
  obs::Tracer::instance().write_chrome_trace(out);
  const std::string trace = out.str();
  std::size_t hits = 0;
  for (std::size_t at = trace.find("stitch-42"); at != std::string::npos;
       at = trace.find("stitch-42", at + 1)) {
    ++hits;
  }
  EXPECT_GE(hits, 2u) << trace;
}

TEST_F(TelemetryTest, AutoTraceIdsAreFreshPerRequest) {
  start_server();
  serve::Client client = connect();
  client.auto_trace_ids("t");
  ASSERT_TRUE(client.ping());
  const std::string first = client.last_trace_id();
  ASSERT_TRUE(client.ping());
  const std::string second = client.last_trace_id();
  EXPECT_EQ(first, "t-1");
  EXPECT_EQ(second, "t-2");
}

// --- Stats frame schema and windows -----------------------------------------

TEST_F(TelemetryTest, StatsFrameCarriesWindowsSourcesAndDrift) {
  start_server();
  serve::Client client = connect();
  ASSERT_TRUE(client.predict({"BT", "S", 4, 2}).has_value());
  const auto stats = client.stats();
  ASSERT_TRUE(stats.has_value());
  // Flat cumulative fields stay where the pre-telemetry schema had them.
  for (const char* key :
       {"\"workers\":", "\"requests\":", "\"errors\":", "\"uptime_s\":",
        "\"latency_p99_s\":", "\"snapshot_version\":"}) {
    EXPECT_NE(stats->find(key), std::string::npos) << key << " in " << *stats;
  }
  // The nested telemetry sections, with their full per-window schema.
  EXPECT_NE(stats->find("\"windows\":{\"1s\":{"), std::string::npos);
  EXPECT_NE(stats->find("\"10s\":{"), std::string::npos);
  EXPECT_NE(stats->find("\"60s\":{"), std::string::npos);
  for (const char* key : {"\"rps\":", "\"error_rate\":", "\"p50_s\":",
                          "\"p95_s\":", "\"p99_s\":"}) {
    EXPECT_NE(stats->find(key), std::string::npos) << key;
  }
  EXPECT_NE(stats->find("\"sources\":{\"snapshot_version\":"),
            std::string::npos);
  EXPECT_NE(stats->find("\"exact\":1"), std::string::npos) << *stats;
  EXPECT_NE(stats->find("\"drift\":null"), std::string::npos);
}

TEST_F(TelemetryTest, StatsUnderConcurrentPipelinedLoadStaysConsistent) {
  serve::ServerConfig config;
  config.workers = 2;
  config.max_inflight = 16;
  start_server(config);
  {
    serve::Client warm = connect();
    ASSERT_TRUE(warm.predict({"BT", "S", 4, 2}).has_value());
  }
  constexpr int kClients = 4;
  constexpr int kBurst = 8;
  constexpr int kRounds = 10;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> last_requests{0};
  std::atomic<int> monotone_violations{0};
  // A stats poller races the load: the cumulative counter must be monotone
  // across reads even while every shard is recording.
  std::thread poller([this, &stop, &last_requests, &monotone_violations] {
    serve::Client client = connect();
    while (!stop.load(std::memory_order_acquire)) {
      const auto m = server_->metrics();
      const std::uint64_t prev = last_requests.load();
      if (m.requests < prev) monotone_violations.fetch_add(1);
      last_requests.store(m.requests);
      if (!client.ping()) break;
    }
  });
  std::vector<std::thread> load;
  for (int c = 0; c < kClients; ++c) {
    load.emplace_back([this] {
      serve::Client client = connect();
      for (int round = 0; round < kRounds; ++round) {
        for (int i = 0; i < kBurst; ++i) {
          ASSERT_TRUE(client.send_request(
              serve::predict_request({"BT", "S", 4, 2})));
        }
        for (int i = 0; i < kBurst; ++i) {
          const auto response = client.read_response();
          ASSERT_TRUE(response.has_value());
          EXPECT_NE(response->find("\"ok\":true"), std::string::npos);
        }
      }
    });
  }
  for (std::thread& t : load) t.join();
  stop.store(true, std::memory_order_release);
  poller.join();
  EXPECT_EQ(monotone_violations.load(), 0);

  // Settled state: the 60 s window has seen every request the cumulative
  // counters have (the suite runs in far under 60 s), so a window merge
  // that dropped or double-counted a shard's slots would show here.
  serve::Client client = connect();
  const auto stats = client.stats();
  ASSERT_TRUE(stats.has_value());
  const auto window_at = stats->find("\"60s\":{\"requests\":");
  ASSERT_NE(window_at, std::string::npos);
  const std::uint64_t windowed = std::stoull(
      stats->substr(window_at + std::string("\"60s\":{\"requests\":").size()));
  const auto total_at = stats->find("\"requests\":");
  ASSERT_NE(total_at, std::string::npos);
  const std::uint64_t total =
      std::stoull(stats->substr(total_at + std::string("\"requests\":").size()));
  EXPECT_EQ(windowed, total);
  EXPECT_GE(total,
            static_cast<std::uint64_t>(kClients) * kBurst * kRounds);
}

// --- Prometheus metrics op --------------------------------------------------

TEST_F(TelemetryTest, MetricsOpRendersPrometheusExposition) {
  start_server();
  serve::Client client = connect();
  ASSERT_TRUE(client.predict({"BT", "S", 4, 2}).has_value());
  const auto exposition = client.metrics();
  ASSERT_TRUE(exposition.has_value());
  EXPECT_EQ(exposition->rfind("# TYPE ", 0), 0u) << *exposition;
  for (const char* needle :
       {"# TYPE serve_requests counter\n", "serve_requests 1\n",
        "# TYPE serve_source_exact counter\nserve_source_exact 1\n",
        "# TYPE serve_request_seconds histogram\n",
        "serve_request_seconds_bucket{le=\"+Inf\"} 1\n",
        "serve_request_seconds_count 1\n",
        "# TYPE serve_uptime_seconds gauge\n",
        "# TYPE obs_trace_dropped_spans gauge\n"}) {
    EXPECT_NE(exposition->find(needle), std::string::npos) << needle;
  }
  // The metrics payload is raw text: no trace_id echo even when asked.
  const auto traced = client.roundtrip(serve::metrics_request("nope"));
  ASSERT_TRUE(traced.has_value());
  EXPECT_EQ(traced->find("trace_id"), std::string::npos);
}

// --- Slow-request log -------------------------------------------------------

TEST(SlowLogUnitTest, KeepsTheKSlowestAndAllRecentFailures) {
  serve::SlowLog log(2, 2);
  for (int i = 1; i <= 5; ++i) {
    serve::SlowLog::Entry e;
    e.latency_s = 0.001 * i;
    e.ok = true;
    e.op = "predict";
    log.record(std::move(e));
  }
  for (int i = 0; i < 3; ++i) {
    serve::SlowLog::Entry e;
    e.latency_s = 0.5;
    e.ok = false;
    e.op = "predict";
    log.record(std::move(e));
  }
  const std::string json = log.to_json();
  // Slow set: only the two slowest ok entries survive.
  EXPECT_NE(json.find("\"latency_s\":0.005"), std::string::npos) << json;
  EXPECT_NE(json.find("\"latency_s\":0.004"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"latency_s\":0.003"), std::string::npos) << json;
  // Failed ring: capacity 2, but the total count remembers all 3.
  EXPECT_NE(json.find("\"failed_total\":3"), std::string::npos) << json;
  // Below-floor fast path: a fast ok entry is rejected without admission.
  EXPECT_FALSE(log.would_admit(true, 0.0001));
  EXPECT_TRUE(log.would_admit(false, 0.0001));  // failures always admitted
}

TEST_F(TelemetryTest, SlowlogOpRecordsFailuresWithTraceContext) {
  start_server();
  serve::Client client = connect();
  // An invalid chain length fails the prediction — that request must land
  // in the failed ring with its op, trace id and truncated payload.
  const auto bad =
      client.roundtrip(serve::predict_request({"BT", "S", 4, 99}, "sl-1"));
  ASSERT_TRUE(bad.has_value());
  const auto good = client.predict({"BT", "S", 4, 2});
  ASSERT_TRUE(good.has_value());
  const auto slowlog = client.slowlog();
  ASSERT_TRUE(slowlog.has_value());
  EXPECT_NE(slowlog->find("\"ok\":true,\"failed_total\":1"),
            std::string::npos)
      << *slowlog;
  EXPECT_NE(slowlog->find("\"op\":\"predict\""), std::string::npos);
  EXPECT_NE(slowlog->find("\"trace_id\":\"sl-1\""), std::string::npos);
  EXPECT_NE(slowlog->find("\"request\":\"{"), std::string::npos);
}

// --- Prediction-quality telemetry -------------------------------------------

TEST_F(TelemetryTest, DriftReportIsDeterministicForAFixedSnapshotPair) {
  const auto outgoing = source_->current();
  ASSERT_NE(outgoing, nullptr);
  const coupling::CouplingDatabase incoming = make_db(true);
  const serve::DriftReport a = serve::compute_drift(*outgoing, incoming, 2);
  const serve::DriftReport b = serve::compute_drift(*outgoing, incoming, 2);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.new_records, 1u);
  EXPECT_EQ(a.compared, 1u);
  EXPECT_GT(a.max, 0.0);
  EXPECT_EQ(a.p50, a.max);  // one sample: every quantile is that sample
}

TEST_F(TelemetryTest, ReloadPublishesTheSameDriftTheDirectComputationGives) {
  start_server();
  const auto outgoing = source_->current();
  ASSERT_NE(outgoing, nullptr);
  const serve::DriftReport expected =
      serve::compute_drift(*outgoing, make_db(true), 2);
  ASSERT_EQ(source_->last_drift(), nullptr);  // no reload yet
  write_db(true);
  ASSERT_TRUE(source_->poll());
  const auto published = source_->last_drift();
  ASSERT_NE(published, nullptr);
  EXPECT_EQ(published->to_json(), expected.to_json());
  // The stats frame now carries it instead of null.
  serve::Client client = connect();
  const auto stats = client.stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_NE(stats->find("\"drift\":{\"from\":1,\"to\":2,\"new_records\":1"),
            std::string::npos)
      << *stats;
}

TEST_F(TelemetryTest, PredictionsAreByteIdenticalWithTelemetryOnAndOff) {
  start_server();
  serve::Client client = connect();
  const std::string payload = serve::predict_request({"BT", "S", 4, 2});
  ASSERT_TRUE(client.roundtrip(payload).has_value());  // warm the cell memo
  const auto untraced = client.roundtrip(payload);
  ASSERT_TRUE(untraced.has_value());
  obs::Tracer::instance().enable();
  const auto traced = client.roundtrip(payload);
  obs::Tracer::instance().disable();
  ASSERT_TRUE(traced.has_value());
  // Telemetry observes the request path; it must never perturb the answer.
  EXPECT_EQ(*untraced, *traced);
}

TEST_F(TelemetryTest, UptimeIsMonotonicAndTracksSteadyElapsed) {
  start_server();
  const auto steady_before = std::chrono::steady_clock::now();
  const double uptime_a = server_->metrics().uptime_s;
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  const double uptime_b = server_->metrics().uptime_s;
  const double steady_elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    steady_before)
          .count();
  EXPECT_GE(uptime_b, uptime_a + 0.1);  // advanced with steady time
  // Pinned to the monotonic clock: the delta can never exceed the steady
  // elapsed bracket around it (a wall-clock source could, under NTP).
  EXPECT_LE(uptime_b - uptime_a, steady_elapsed + 1e-9);
}

}  // namespace
}  // namespace kcoup