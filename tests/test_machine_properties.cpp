// Property and fuzz tests for the machine model: invariants that must hold
// for ANY access sequence, checked over randomized workloads.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "machine/cache_model.hpp"
#include "machine/machine.hpp"

namespace kcoup::machine {
namespace {

MachineConfig small_machine() {
  MachineConfig c;
  c.name = "prop";
  c.flops_per_second = 1e9;
  c.cache.push_back(CacheLevel{4 * 1024, 1e-9});
  c.cache.push_back(CacheLevel{64 * 1024, 1e-8});
  c.memory_seconds_per_byte = 1e-7;
  c.ranks = 1;
  return c;
}

struct FuzzWorkload {
  std::vector<std::size_t> region_sizes;
  std::vector<RegionAccess> accesses;  // flat sequence, kernel derived below
};

FuzzWorkload random_workload(std::mt19937& rng, std::size_t regions,
                             std::size_t steps) {
  FuzzWorkload w;
  std::uniform_int_distribution<std::size_t> size_dist(64, 128 * 1024);
  for (std::size_t r = 0; r < regions; ++r) {
    w.region_sizes.push_back(size_dist(rng));
  }
  std::uniform_int_distribution<std::size_t> region_dist(0, regions - 1);
  std::uniform_int_distribution<int> kind_dist(0, 2);
  std::uniform_real_distribution<double> frac_dist(0.0, 1.0);
  for (std::size_t s = 0; s < steps; ++s) {
    RegionAccess a;
    a.region = static_cast<RegionId>(region_dist(rng));
    a.kind = static_cast<AccessKind>(kind_dist(rng));
    a.bytes = std::uniform_int_distribution<std::size_t>(
        0, 2 * w.region_sizes[a.region])(rng);
    a.fresh_fraction = frac_dist(rng) < 0.4 ? frac_dist(rng) : 0.0;
    a.pipelined_self_reuse = frac_dist(rng) < 0.15;
    w.accesses.push_back(a);
  }
  return w;
}

std::size_t total_bytes(const CacheModel::AccessCost& c) {
  std::size_t t = c.memory_bytes;
  for (std::size_t b : c.level_bytes) t += b;
  return t;
}

class CacheFuzzTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(CacheFuzzTest, EveryByteIsPricedExactlyOnce) {
  std::mt19937 rng(GetParam());
  const MachineConfig cfg = small_machine();
  CacheModel cache(&cfg);
  const FuzzWorkload w = random_workload(rng, 6, 300);
  for (std::size_t r = 0; r < w.region_sizes.size(); ++r) {
    (void)cache.register_region("r" + std::to_string(r), w.region_sizes[r]);
  }
  std::size_t footprint = 0;
  std::uint64_t kernel = 0, prev = machine::kInvalidKernel;
  for (std::size_t i = 0; i < w.accesses.size(); ++i) {
    const RegionAccess& a = w.accesses[i];
    const auto cost = cache.access(static_cast<KernelId>(kernel),
                                   static_cast<KernelId>(prev), a, footprint,
                                   8);
    // Conservation: bytes served across all levels equal bytes accessed.
    EXPECT_EQ(total_bytes(cost), a.bytes);
    footprint += cache.effective_footprint(a);
    if (i % 7 == 6) {  // end an invocation every few accesses
      cache.end_invocation(static_cast<KernelId>(kernel), footprint);
      prev = kernel;
      kernel = (kernel + 1) % 4;
      footprint = 0;
    }
  }
}

TEST_P(CacheFuzzTest, DeterministicReplay) {
  const MachineConfig cfg = small_machine();
  const FuzzWorkload w = [&] {
    std::mt19937 rng(GetParam() + 1000);
    return random_workload(rng, 5, 200);
  }();
  auto run_once = [&] {
    CacheModel cache(&cfg);
    for (std::size_t r = 0; r < w.region_sizes.size(); ++r) {
      (void)cache.register_region("r", w.region_sizes[r]);
    }
    std::vector<std::size_t> trace;
    std::size_t fp = 0;
    for (const RegionAccess& a : w.accesses) {
      const auto c = cache.access(1, 0, a, fp, 4);
      trace.push_back(c.memory_bytes);
      for (std::size_t b : c.level_bytes) trace.push_back(b);
      fp += cache.effective_footprint(a);
    }
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_P(CacheFuzzTest, BiggerCachesNeverCostMore) {
  // Monotonicity: enlarging every cache level can only move traffic to
  // faster levels, never slower ones.
  const FuzzWorkload w = [&] {
    std::mt19937 rng(GetParam() + 2000);
    return random_workload(rng, 5, 200);
  }();
  auto total_cost = [&](std::size_t scale) {
    MachineConfig cfg = small_machine();
    for (auto& level : cfg.cache) level.capacity_bytes *= scale;
    Machine m(cfg);
    for (std::size_t r = 0; r < w.region_sizes.size(); ++r) {
      (void)m.register_region("r", w.region_sizes[r]);
    }
    double t = 0.0;
    WorkProfile p;
    p.kernel = 0;
    p.pipeline_stages = 4;
    for (std::size_t i = 0; i < w.accesses.size(); ++i) {
      p.accesses.push_back(w.accesses[i]);
      if (i % 5 == 4) {
        t += m.execute_seconds(p);
        p.accesses.clear();
        p.kernel = (p.kernel + 1) % 3;
      }
    }
    return t;
  };
  const double base = total_cost(1);
  const double doubled = total_cost(2);
  const double huge = total_cost(64);
  EXPECT_LE(doubled, base * (1.0 + 1e-12));
  EXPECT_LE(huge, doubled * (1.0 + 1e-12));
}

TEST_P(CacheFuzzTest, ResetRestoresInitialBehaviour) {
  const FuzzWorkload w = [&] {
    std::mt19937 rng(GetParam() + 3000);
    return random_workload(rng, 4, 120);
  }();
  const MachineConfig cfg = small_machine();
  Machine m(cfg);
  for (std::size_t r = 0; r < w.region_sizes.size(); ++r) {
    (void)m.register_region("r", w.region_sizes[r]);
  }
  WorkProfile p;
  p.kernel = 2;
  p.pipeline_stages = 4;
  p.accesses = w.accesses;
  const double first = m.execute_seconds(p);
  (void)m.execute_seconds(p);
  m.reset_state();
  EXPECT_DOUBLE_EQ(m.execute_seconds(p), first);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

TEST(MachinePropertyTest, CostsScaleMonotonicallyWithWork) {
  Machine m(small_machine());
  const RegionId r = m.register_region("a", 1 << 20);
  auto cost_for = [&](double flops, std::size_t bytes) {
    m.reset_state();
    WorkProfile p;
    p.kernel = 0;
    p.flops = flops;
    p.accesses = {RegionAccess{r, AccessKind::kRead, bytes}};
    return m.execute_seconds(p);
  };
  EXPECT_LT(cost_for(1e6, 1000), cost_for(2e6, 1000));
  EXPECT_LT(cost_for(1e6, 1000), cost_for(1e6, 2000));
}

TEST(MachinePropertyTest, ContentionGrowsWithRanks) {
  auto comm_cost = [&](int ranks) {
    MachineConfig cfg = small_machine();
    cfg.net_latency_s = 1e-6;
    cfg.net_seconds_per_byte = 1e-9;
    cfg.net_contention_coeff = 0.3;
    cfg.ranks = ranks;
    Machine m(cfg);
    WorkProfile p;
    p.kernel = 0;
    p.messages = {MessageOp{4, 100000}};
    return m.execute(p).comm_s;
  };
  EXPECT_LT(comm_cost(1), comm_cost(4));
  EXPECT_LT(comm_cost(4), comm_cost(16));
}

TEST(MachinePropertyTest, UnitHashIsDeterministicAndBounded) {
  for (std::uint64_t k = 0; k < 1000; ++k) {
    const double v = Machine::unit_hash(k);
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    EXPECT_EQ(v, Machine::unit_hash(k));
  }
  // Not constant.
  EXPECT_NE(Machine::unit_hash(1), Machine::unit_hash(2));
}

}  // namespace
}  // namespace kcoup::machine
