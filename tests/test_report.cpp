// Tests for the report/table formatting utilities.

#include <gtest/gtest.h>

#include "report/table.hpp"

namespace kcoup::report {
namespace {

TEST(TableTest, AlignedTextOutput) {
  Table t("Title");
  t.set_header({"a", "longer"});
  t.add_row({"xxx", "y"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("xxx  y"), std::string::npos);  // padded columns
}

TEST(TableTest, CsvOutput) {
  Table t("T");
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(TableTest, RaggedRowsTolerated) {
  Table t("T");
  t.set_header({"a", "b", "c"});
  t.add_row({"only-one"});
  EXPECT_NE(t.to_string().find("only-one"), std::string::npos);
}

TEST(FormatTest, Seconds) {
  EXPECT_EQ(format_seconds(123.456), "123.5");
  EXPECT_EQ(format_seconds(12.345), "12.35");
  EXPECT_EQ(format_seconds(0.12345), "0.1235");  // %.4f rounds
}

TEST(FormatTest, PercentAndPrediction) {
  EXPECT_EQ(format_percent(0.1745), "17.45 %");
  EXPECT_EQ(format_prediction(2.0, 0.005), "2.00 (0.50 %)");
}

TEST(FormatTest, Coupling) { EXPECT_EQ(format_coupling(0.75), "0.7500"); }

}  // namespace
}  // namespace kcoup::report
