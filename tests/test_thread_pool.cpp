// Tests for the reusable worker pool behind the campaign executor.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "support/thread_pool.hpp"

namespace kcoup::support {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedJob) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.worker_count(), 4u);
    for (int i = 0; i < 1000; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), 1000);
  }
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, ZeroWorkersClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 1u);
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.wait_idle();  // nothing queued: returns immediately
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), 50 * (round + 1));
  }
}

TEST(ThreadPoolTest, WorkerIndexIsStablePerWorkerAndInRange) {
  // Off-pool threads have no index.
  EXPECT_EQ(ThreadPool::this_worker_index(), ThreadPool::npos);

  constexpr std::size_t kWorkers = 4;
  ThreadPool pool(kWorkers);
  std::vector<std::atomic<int>> hits(kWorkers);
  std::atomic<bool> out_of_range{false};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&hits, &out_of_range] {
      const std::size_t w = ThreadPool::this_worker_index();
      if (w >= kWorkers) {
        out_of_range = true;
      } else {
        hits[w].fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  pool.wait_idle();
  EXPECT_FALSE(out_of_range.load());
  int total = 0;
  for (const auto& h : hits) total += h.load();
  EXPECT_EQ(total, 200);
}

TEST(ThreadPoolTest, JobsMaySubmitMoreJobs) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&pool, &count] {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, DistinctSlotsNeedNoLocking) {
  // The executor's pattern: pre-sized storage, one writer per slot.
  std::vector<double> slots(256, 0.0);
  {
    ThreadPool pool(8);
    for (std::size_t i = 0; i < slots.size(); ++i) {
      double* slot = &slots[i];
      pool.submit([slot, i] { *slot = static_cast<double>(i) * 2.0; });
    }
    pool.wait_idle();
  }
  for (std::size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i], static_cast<double>(i) * 2.0);
  }
}

}  // namespace
}  // namespace kcoup::support
