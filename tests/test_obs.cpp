// Tests for the observability layer: span rings and the process-wide
// tracer, the Chrome trace exporter, the metrics registry, the
// CampaignMetrics registry round trip (bit-compatibility), tracing a real
// campaign, and the latency histogram's edge cases.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <atomic>
#include <cstdint>

#include "campaign/campaign.hpp"
#include "campaign/executor.hpp"
#include "campaign/planner.hpp"
#include "coupling/study.hpp"
#include "obs/metrics.hpp"
#include "obs/prom.hpp"
#include "obs/trace.hpp"
#include "obs/window.hpp"
#include "support/latency_histogram.hpp"

namespace kcoup::obs {
namespace {

/// The tracer is process-wide; every test that records spans starts from a
/// clean, disabled state and leaves it that way.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().disable();
    Tracer::instance().clear();
  }
  void TearDown() override {
    Tracer::instance().disable();
    Tracer::instance().clear();
  }
};

TEST_F(TracerTest, DisabledSpanRecordsNothing) {
  {
    ScopedSpan span("noop", "test");
    EXPECT_FALSE(span.active());
    span.annotate("ignored", std::uint64_t{7});
  }
  EXPECT_EQ(Tracer::instance().spans_recorded(), 0u);
}

TEST_F(TracerTest, EnabledSpanIsRecordedWithAnnotations) {
  Tracer::instance().enable();
  {
    ScopedSpan span("work", "test");
    EXPECT_TRUE(span.active());
    span.annotate("text", std::string_view("hello"));
    span.annotate("count", std::uint64_t{42});
    span.annotate("flag", true);
    span.annotate("literal", "predict");  // const char* must not become bool
  }
  Tracer::instance().disable();
  EXPECT_EQ(Tracer::instance().spans_recorded(), 1u);
  EXPECT_EQ(Tracer::instance().spans_dropped(), 0u);

  std::ostringstream out;
  Tracer::instance().write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"name\":\"work\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"test\""), std::string::npos);
  EXPECT_NE(json.find("\"text\":\"hello\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":\"42\""), std::string::npos);
  EXPECT_NE(json.find("\"flag\":\"true\""), std::string::npos);
  EXPECT_NE(json.find("\"literal\":\"predict\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST_F(TracerTest, RecordFlagFalseStaysInertWhileEnabled) {
  Tracer::instance().enable();
  {
    ScopedSpan span("skipped", "test", /*record=*/false);
    EXPECT_FALSE(span.active());
  }
  Tracer::instance().disable();
  EXPECT_EQ(Tracer::instance().spans_recorded(), 0u);
}

TEST_F(TracerTest, FinishEndsTheSpanOnceAndEarly) {
  Tracer::instance().enable();
  {
    ScopedSpan span("early", "test");
    span.finish();
    EXPECT_FALSE(span.active());
    span.finish();  // idempotent: the destructor must not double-commit
  }
  Tracer::instance().disable();
  EXPECT_EQ(Tracer::instance().spans_recorded(), 1u);
}

TEST_F(TracerTest, OversizedAnnotationsAreTruncatedNotCorrupted) {
  Tracer::instance().enable();
  const std::string long_value(200, 'v');
  {
    ScopedSpan span("trunc", "test");
    span.annotate("this-key-is-much-longer-than-the-buffer",
                  std::string_view(long_value));
    // Over the per-span annotation cap: extras are dropped silently.
    for (int i = 0; i < 10; ++i) span.annotate("extra", std::uint64_t{1});
  }
  Tracer::instance().disable();
  std::ostringstream out;
  Tracer::instance().write_chrome_trace(out);
  const std::string json = out.str();
  // Keys cap at 23 chars + NUL, values at 47 + NUL.
  EXPECT_NE(json.find("\"this-key-is-much-longer\""), std::string::npos);
  EXPECT_NE(json.find('"' + std::string(47, 'v') + '"'), std::string::npos);
  EXPECT_EQ(json.find(std::string(48, 'v')), std::string::npos);
}

TEST_F(TracerTest, AnnotationValuesAreJsonEscaped) {
  Tracer::instance().enable();
  {
    ScopedSpan span("escape", "test");
    span.annotate("quote", std::string_view("a\"b\\c\nd"));
  }
  Tracer::instance().disable();
  std::ostringstream out;
  Tracer::instance().write_chrome_trace(out);
  EXPECT_NE(out.str().find("a\\\"b\\\\c\\nd"), std::string::npos);
}

TEST_F(TracerTest, RingWrapDropsOldestAndCountsThem) {
  Tracer::instance().enable();
  const std::uint64_t total = SpanRing::kCapacity + 100;
  for (std::uint64_t i = 0; i < total; ++i) {
    ScopedSpan span("wrap", "test");
  }
  Tracer::instance().disable();
  EXPECT_EQ(Tracer::instance().spans_recorded(), total);
  EXPECT_EQ(Tracer::instance().spans_dropped(), 100u);
}

TEST_F(TracerTest, ConcurrentWritersEachGetTheirOwnRing) {
  Tracer::instance().enable();
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        ScopedSpan span("threaded", "test");
        span.annotate("i", static_cast<std::uint64_t>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  Tracer::instance().disable();
  EXPECT_EQ(Tracer::instance().spans_recorded(),
            static_cast<std::uint64_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(Tracer::instance().spans_dropped(), 0u);

  std::ostringstream out;
  Tracer::instance().write_chrome_trace(out);
  // Every event serialized, start-time sorted, one JSON object each.
  std::size_t events = 0;
  for (std::size_t p = out.str().find("\"ph\":\"X\""); p != std::string::npos;
       p = out.str().find("\"ph\":\"X\"", p + 1)) {
    ++events;
  }
  EXPECT_EQ(events, static_cast<std::size_t>(kThreads) * kSpansPerThread);
}

TEST_F(TracerTest, ClearDropsRecordedSpans) {
  Tracer::instance().enable();
  { ScopedSpan span("gone", "test"); }
  Tracer::instance().disable();
  ASSERT_EQ(Tracer::instance().spans_recorded(), 1u);
  Tracer::instance().clear();
  EXPECT_EQ(Tracer::instance().spans_recorded(), 0u);
  std::ostringstream out;
  Tracer::instance().write_chrome_trace(out);
  EXPECT_EQ(out.str().find("\"name\":\"gone\""), std::string::npos);
}

// --- Metrics registry --------------------------------------------------------

TEST(MetricsRegistryTest, GetOrCreateReturnsStableReferences) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(2);
  b.add(3);
  EXPECT_EQ(reg.counter("x").value(), 5u);

  Gauge& g = reg.gauge("y");
  g.set(0.1 + 0.2);  // not representable as a round number
  EXPECT_EQ(reg.gauge("y").value(), 0.1 + 0.2);  // bit-exact round trip

  Histogram& h = reg.histogram("z");
  h.record(0.5);
  EXPECT_EQ(reg.histogram("z").snapshot().count(), 1u);
}

TEST(MetricsRegistryTest, SnapshotIsNameSortedAndComplete) {
  MetricsRegistry reg;
  reg.counter("b").add(2);
  reg.counter("a").add(1);
  reg.gauge("g").set(1.5);
  reg.histogram("h").record(0.25);

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a");
  EXPECT_EQ(snap.counters[0].second, 1u);
  EXPECT_EQ(snap.counters[1].first, "b");
  EXPECT_EQ(snap.counters[1].second, 2u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, 1.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count(), 1u);
}

TEST(MetricsRegistryTest, ConcurrentCounterAddsAreLossless) {
  MetricsRegistry reg;
  Counter& c = reg.counter("hits");
  constexpr int kThreads = 4;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

// --- CampaignMetrics <-> registry round trip ---------------------------------

TEST(CampaignMetricsRegistryTest, PublishThenReadBackIsBitIdentical) {
  campaign::CampaignMetrics m;
  m.studies = 3;
  m.workers = 7;
  m.tasks_requested = 41;
  m.tasks_planned = 29;
  m.tasks_deduplicated = 12;
  m.cache_hits = 5;
  m.journal_hits = 2;
  m.tasks_executed = 22;
  m.tasks_retried = 4;
  m.tasks_failed = 1;
  m.handles_created = 9;
  m.handles_reused = 13;
  m.plan_s = 0.1 + 0.2;
  m.measure_s = 1.0 / 3.0;
  m.assemble_s = 2.0 / 7.0;
  m.wall_s = 0.7071067811865476;
  m.task_min_s = 1e-7;
  m.task_max_s = 3.3333333333333335;
  m.task_mean_s = 0.12345678901234567;

  MetricsRegistry reg;
  m.publish(reg);
  const campaign::CampaignMetrics back =
      campaign::CampaignMetrics::from_registry(reg);
  // The renderers are the compatibility contract: identical output means
  // the registry indirection changed nothing.
  EXPECT_EQ(back.to_csv(), m.to_csv());
  EXPECT_EQ(back.to_jsonl(), m.to_jsonl());
  EXPECT_EQ(back.to_table().to_string(), m.to_table().to_string());
}

// --- Tracing a real campaign -------------------------------------------------

/// Minimal deterministic app so the campaign below has real tasks.
struct SyntheticOwner {
  std::vector<std::unique_ptr<coupling::CallableKernel>> kernels;
  coupling::LoopApplication inner;

  explicit SyntheticOwner(std::size_t loop_size) {
    inner.name = "synthetic";
    inner.iterations = 3;
    for (std::size_t k = 0; k < loop_size; ++k) {
      kernels.push_back(std::make_unique<coupling::CallableKernel>(
          "k" + std::to_string(k),
          [k] { return static_cast<double>(k + 1) * 0.001; }));
      inner.loop.push_back(kernels.back().get());
    }
  }
  [[nodiscard]] const coupling::LoopApplication& app() const { return inner; }
};

campaign::CampaignSpec synthetic_spec() {
  campaign::CampaignSpec spec;
  campaign::CampaignStudy cell;
  cell.application = "A";
  cell.config = "C";
  cell.ranks = 1;
  cell.factory = [] {
    return campaign::own_app(std::make_unique<SyntheticOwner>(3));
  };
  spec.studies.push_back(std::move(cell));
  spec.chain_lengths = {2};
  return spec;
}

TEST_F(TracerTest, TracedCampaignMatchesUntracedBitForBit) {
  const campaign::CampaignResult baseline =
      campaign::run_campaign(synthetic_spec(), 1);

  Tracer::instance().enable();
  const campaign::CampaignResult traced =
      campaign::run_campaign(synthetic_spec(), 1);
  Tracer::instance().disable();

  ASSERT_EQ(traced.studies.size(), baseline.studies.size());
  EXPECT_EQ(traced.studies[0].actual_s, baseline.studies[0].actual_s);
  EXPECT_EQ(traced.studies[0].summation_s, baseline.studies[0].summation_s);
  ASSERT_EQ(traced.studies[0].by_length.size(),
            baseline.studies[0].by_length.size());
  EXPECT_EQ(traced.studies[0].by_length[0].prediction_s,
            baseline.studies[0].by_length[0].prediction_s);
  EXPECT_EQ(traced.metrics.tasks_executed, baseline.metrics.tasks_executed);

  // Every executed task shows up as a span, plus the phase + plan spans.
  std::ostringstream out;
  Tracer::instance().write_chrome_trace(out);
  const std::string json = out.str();
  std::size_t task_spans = 0;
  for (std::size_t p = json.find("\"name\":\"task\""); p != std::string::npos;
       p = json.find("\"name\":\"task\"", p + 1)) {
    ++task_spans;
  }
  EXPECT_EQ(task_spans, traced.metrics.tasks_executed);
  EXPECT_NE(json.find("\"name\":\"plan\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"measure_phase\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"assemble_phase\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"measure\""), std::string::npos);
}

TEST_F(TracerTest, ExecutorPopulatesExternalRegistryLive) {
  MetricsRegistry reg;
  const campaign::CampaignResult result =
      campaign::run_campaign(synthetic_spec(), 1, nullptr, &reg);
  EXPECT_EQ(reg.counter("campaign.tasks_executed").value(),
            result.metrics.tasks_executed);
  EXPECT_EQ(reg.counter("campaign.tasks_failed").value(), 0u);
  EXPECT_EQ(reg.histogram("campaign.task_seconds").snapshot().count(),
            result.metrics.tasks_executed);
  // The returned metrics ARE the registry view.
  EXPECT_EQ(campaign::CampaignMetrics::from_registry(reg).to_csv(),
            result.metrics.to_csv());
}

// --- LatencyHistogram edge cases ---------------------------------------------

TEST(LatencyHistogramEdgeTest, ExactBucketBoundariesLandInRange) {
  support::LatencyHistogram h;
  // Exact powers of two at the range edges and a mid-range boundary.
  h.record(std::ldexp(1.0, support::LatencyHistogram::kMinExponent));  // 2^-20
  h.record(1.0);
  h.record(std::ldexp(1.0, support::LatencyHistogram::kMaxExponent - 1));
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), std::ldexp(1.0, -20));
  EXPECT_EQ(h.max(), std::ldexp(1.0, 7));
  // Quantiles stay clamped to the observed range.
  EXPECT_GE(h.quantile(0.5), h.min());
  EXPECT_LE(h.quantile(0.5), h.max());
}

TEST(LatencyHistogramEdgeTest, ClampsBelowAndAboveTheBucketRange) {
  support::LatencyHistogram h;
  h.record(1e-9);   // far below 2^-20 s: clamps into the bottom bucket
  h.record(1000.0); // far above 256 s: clamps into the top bucket
  h.record(0.0);    // zero is a valid sample (bottom bucket)
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 1000.0);
  // The quantile midpoint of an edge bucket is clamped to observed extremes.
  EXPECT_EQ(h.quantile(1.0), 1000.0);
  EXPECT_EQ(h.quantile(0.0), 0.0);
  EXPECT_LE(h.quantile(0.99), 1000.0);
}

TEST(LatencyHistogramEdgeTest, NanAndNegativeSamplesAreDropped) {
  support::LatencyHistogram h;
  h.record(std::numeric_limits<double>::quiet_NaN());
  h.record(-1.0);
  h.record(-0.0);  // negative zero satisfies >= 0: kept
  EXPECT_EQ(h.count(), 1u);
  h.record(0.5);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), 0.5);
}

TEST(LatencyHistogramEdgeTest, MergePreservesMinMaxWhenOneSideIsEmpty) {
  support::LatencyHistogram filled;
  filled.record(0.25);
  filled.record(2.0);

  support::LatencyHistogram empty;
  filled.merge(empty);  // merging an empty histogram changes nothing
  EXPECT_EQ(filled.count(), 2u);
  EXPECT_EQ(filled.min(), 0.25);
  EXPECT_EQ(filled.max(), 2.0);

  support::LatencyHistogram target;
  target.merge(filled);  // merging INTO an empty one adopts min/max
  EXPECT_EQ(target.count(), 2u);
  EXPECT_EQ(target.min(), 0.25);
  EXPECT_EQ(target.max(), 2.0);

  support::LatencyHistogram other;
  other.record(0.125);
  other.record(4.0);
  target.merge(other);
  EXPECT_EQ(target.count(), 4u);
  EXPECT_EQ(target.min(), 0.125);
  EXPECT_EQ(target.max(), 4.0);
  EXPECT_EQ(target.mean(), (0.25 + 2.0 + 0.125 + 4.0) / 4.0);
}

// --- Windowed stores --------------------------------------------------------
//
// now_s is caller-supplied (monotonic seconds), so these tests drive time
// deterministically instead of sleeping.

TEST(WindowedCounterTest, SumsOnlyEpochsInsideTheWindow) {
  WindowedCounter c;
  c.add(10, 3);
  c.add(11, 5);
  c.add(19, 7);
  // Window (now - w, now]: at now=19 the 1 s window is just second 19.
  EXPECT_EQ(c.sum(19, 1), 7u);
  EXPECT_EQ(c.sum(19, 10), 15u);  // seconds 10..19: 11 and 19 → 5 + 7
  EXPECT_EQ(c.sum(19, 60), 15u);
  EXPECT_EQ(c.sum(20, 10), 12u);  // second 10 ages out
  EXPECT_EQ(c.sum(100, 60), 0u);  // everything aged out
}

TEST(WindowedCounterTest, SlotRecycleReplacesStaleEpochNotAccumulates) {
  WindowedCounter c;
  c.add(5, 100);
  // 64 slots: second 69 lands on the same slot as second 5 and must reset
  // it, not add to it.
  c.add(5 + WindowedCounter::kSlots, 1);
  EXPECT_EQ(c.sum(5 + WindowedCounter::kSlots, 1), 1u);
  EXPECT_EQ(c.sum(5 + WindowedCounter::kSlots, 60), 1u);
}

TEST(WindowedHistogramTest, CollectMergesShardsWithoutDoubleCounting) {
  WindowedHistogram shard_a;
  WindowedHistogram shard_b;
  for (int i = 0; i < 10; ++i) shard_a.record(100, 0.001);
  for (int i = 0; i < 20; ++i) shard_b.record(100, 0.004);
  support::LatencyHistogram merged;
  shard_a.collect(100, 10, &merged);
  shard_b.collect(100, 10, &merged);
  EXPECT_EQ(merged.count(), 30u);
  // A second independent read sees the identical window — reading never
  // consumes or double-counts.
  support::LatencyHistogram again;
  shard_a.collect(100, 10, &again);
  shard_b.collect(100, 10, &again);
  EXPECT_EQ(again.count(), 30u);
  EXPECT_EQ(again.quantile(0.5), merged.quantile(0.5));
}

TEST(WindowedHistogramTest, RollingQuantileShedsWarmupCumulativeStaysPolluted) {
  // The reason rolling windows exist: a slow warmup phase pollutes the
  // cumulative p99 forever, while the rolling 10 s p99 converges to the
  // injected steady-state latency once the warmup ages out.
  WindowedHistogram rolling;
  support::LatencyHistogram cumulative;
  for (std::int64_t t = 0; t < 10; ++t) {  // warmup: 0.5 s requests
    for (int i = 0; i < 20; ++i) {
      rolling.record(t, 0.5);
      cumulative.record(0.5);
    }
  }
  for (std::int64_t t = 30; t <= 50; ++t) {  // steady state: 2 ms injected
    for (int i = 0; i < 200; ++i) {
      rolling.record(t, 0.002);
      cumulative.record(0.002);
    }
  }
  support::LatencyHistogram window;
  rolling.collect(50, 10, &window);
  EXPECT_EQ(window.count(), 2000u);
  EXPECT_NEAR(window.quantile(0.99), 0.002, 0.002 * 0.07);  // converged
  // Cumulative: 200 of 4400 samples are warmup (4.5 %), so its p99 still
  // sits in the warmup mass.
  EXPECT_GT(cumulative.quantile(0.99), 0.4);
}

TEST(WindowedStoresConcurrentReaderTest, ReadsRaceFreeAgainstOneWriter) {
  // Single-writer / any-reader contract: a reader merging the window while
  // the writer records must be race-free (TSan) and never observe torn
  // values.  Totals are checked after the writer finishes.
  WindowedCounter counter;
  WindowedHistogram histogram;
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      (void)counter.sum(5, 60);
      support::LatencyHistogram h;
      histogram.collect(5, 60, &h);
    }
  });
  for (int i = 0; i < 20000; ++i) {
    const std::int64_t now_s = i % 8;  // a few distinct seconds, no aging
    counter.add(now_s);
    histogram.record(now_s, 0.001);
  }
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(counter.sum(7, 60), 20000u);
  support::LatencyHistogram all;
  histogram.collect(7, 60, &all);
  EXPECT_EQ(all.count(), 20000u);
}

// --- Prometheus text exposition ---------------------------------------------

TEST(PrometheusTest, NameMappingFollowsTheMetricCharset) {
  EXPECT_EQ(prometheus_name("serve.request_seconds"),
            "serve_request_seconds");
  EXPECT_EQ(prometheus_name("a:b_c9"), "a:b_c9");  // legal chars unchanged
  EXPECT_EQ(prometheus_name("9lives"), "_9lives");  // leading digit guarded
  EXPECT_EQ(prometheus_name("sp ace-dash"), "sp_ace_dash");
}

TEST(PrometheusTest, CounterAndGaugeRenderIsBitExact) {
  MetricsRegistry registry;
  registry.counter("serve.requests").add(3);
  registry.gauge("serve.uptime_seconds").set(1.5);
  const std::string out = render_prometheus(registry.snapshot());
  EXPECT_EQ(out,
            "# TYPE serve_requests counter\n"
            "serve_requests 3\n"
            "# TYPE serve_uptime_seconds gauge\n"
            "serve_uptime_seconds 1.5\n");
  // Deterministic: an identical snapshot renders identical bytes.
  EXPECT_EQ(out, render_prometheus(registry.snapshot()));
}

TEST(PrometheusTest, HistogramBucketsAreCumulativeAndComplete) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("serve.request_seconds");
  h.record(0.001);
  h.record(0.004);
  h.record(2.0);
  const std::string out = render_prometheus(registry.snapshot());
  EXPECT_NE(out.find("# TYPE serve_request_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(out.find("serve_request_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(out.find("serve_request_seconds_count 3\n"), std::string::npos);
  EXPECT_NE(out.find("serve_request_seconds_sum "), std::string::npos);
  // Cumulative invariant: bucket counts never decrease as le grows.
  std::uint64_t last = 0;
  std::size_t at = 0;
  const std::string needle = "serve_request_seconds_bucket{le=\"";
  while ((at = out.find(needle, at)) != std::string::npos) {
    const std::size_t space = out.find("} ", at);
    ASSERT_NE(space, std::string::npos);
    const std::uint64_t n = std::stoull(out.substr(space + 2));
    EXPECT_GE(n, last);
    last = n;
    at = space;
  }
  EXPECT_EQ(last, 3u);  // the +Inf bucket holds every sample
}

// --- Tracer metrics export (SpanRing wrap accounting) ------------------------

TEST_F(TracerTest, ExportTracerMetricsPublishesRingWrapDrops) {
  Tracer::instance().enable();
  const std::uint64_t total = SpanRing::kCapacity + 123;
  for (std::uint64_t i = 0; i < total; ++i) {
    ScopedSpan span("wrap_export", "test");
  }
  Tracer::instance().disable();
  MetricsRegistry registry;
  export_tracer_metrics(registry);
  EXPECT_EQ(registry.gauge("obs.trace.spans_recorded").value(),
            static_cast<double>(total));
  EXPECT_EQ(registry.gauge("obs.trace.dropped_spans").value(), 123.0);
}

}  // namespace
}  // namespace kcoup::obs
