// Tests for the trace utilities: statistics, clocks, phase registry.

#include <gtest/gtest.h>

#include <vector>

#include "trace/phase_timer.hpp"
#include "trace/stats.hpp"
#include "trace/stopwatch.hpp"
#include "trace/virtual_clock.hpp"

namespace kcoup::trace {
namespace {

TEST(RunningStatsTest, EmptyStats) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
}

TEST(RunningStatsTest, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeEqualsCombinedStream) {
  RunningStats a, b, all;
  const std::vector<double> xs{1.5, -2.0, 7.25, 0.0, 3.5, 9.0};
  for (std::size_t i = 0; i < xs.size(); ++i) {
    (i < 3 ? a : b).add(xs[i]);
    all.add(xs[i]);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(StatsTest, SummarizeSpan) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const RunningStats s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

TEST(StatsTest, RelativeError) {
  EXPECT_DOUBLE_EQ(relative_error(110.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(90.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(-90.0, -100.0), 0.1);
  EXPECT_TRUE(std::isinf(relative_error(1.0, 0.0)));
}

TEST(VirtualClockTest, AdvanceAndJump) {
  VirtualClock c;
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
  c.advance(1.5);
  c.advance(0.0);
  EXPECT_DOUBLE_EQ(c.now(), 1.5);
  c.advance_to(1.0);  // in the past: ignored
  EXPECT_DOUBLE_EQ(c.now(), 1.5);
  c.advance_to(4.0);
  EXPECT_DOUBLE_EQ(c.now(), 4.0);
  c.reset();
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
}

TEST(StopwatchTest, MeasuresNonNegativeElapsed) {
  Stopwatch w;
  EXPECT_GE(w.elapsed_s(), 0.0);
  w.restart();
  EXPECT_GE(w.elapsed_s(), 0.0);
}

TEST(PhaseRegistryTest, RecordAndFind) {
  PhaseRegistry reg;
  reg.record("x_solve", 1.0);
  reg.record("x_solve", 3.0);
  reg.record("add", 0.5);
  const RunningStats* xs = reg.find("x_solve");
  ASSERT_NE(xs, nullptr);
  EXPECT_EQ(xs->count(), 2u);
  EXPECT_DOUBLE_EQ(xs->mean(), 2.0);
  EXPECT_EQ(reg.find("missing"), nullptr);
  EXPECT_EQ(reg.phases().size(), 2u);
  reg.clear();
  EXPECT_TRUE(reg.phases().empty());
}

}  // namespace
}  // namespace kcoup::trace
