// Integration tests for the modeled BT/SP/LU applications: structure of the
// kernel loops, determinism of studies, and the paper's headline property —
// the coupling predictor beats the summation predictor on the modeled SP
// machine for the classes/processor counts of the evaluation tables.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "coupling/study.hpp"
#include "machine/config.hpp"
#include "npb/bt/bt_model.hpp"
#include "npb/lu/lu_model.hpp"
#include "npb/sp/sp_model.hpp"

namespace kcoup::npb {
namespace {

std::vector<std::string> loop_names(const coupling::LoopApplication& app) {
  std::vector<std::string> names;
  for (const auto* k : app.loop) names.push_back(k->name());
  return names;
}

TEST(ModeledBtTest, SevenKernelStructure) {
  auto m = bt::make_modeled_bt(ProblemClass::kS, 4, machine::ibm_sp_p2sc());
  EXPECT_EQ(loop_names(m->app()),
            (std::vector<std::string>{"Copy_Faces", "X_Solve", "Y_Solve",
                                      "Z_Solve", "Add"}));
  ASSERT_EQ(m->app().prologue.size(), 1u);
  ASSERT_EQ(m->app().epilogue.size(), 1u);
  EXPECT_EQ(m->app().prologue[0]->name(), "Initialization");
  EXPECT_EQ(m->app().epilogue[0]->name(), "Final");
  EXPECT_EQ(m->app().iterations, 60);  // Class S (section 4.1)
}

TEST(ModeledSpTest, EightKernelStructure) {
  auto m = sp::make_modeled_sp(ProblemClass::kW, 4, machine::ibm_sp_p2sc());
  EXPECT_EQ(loop_names(m->app()),
            (std::vector<std::string>{"Copy_Faces", "Txinvr", "X_Solve",
                                      "Y_Solve", "Z_Solve", "Add"}));
  EXPECT_EQ(m->app().prologue.size(), 1u);
  EXPECT_EQ(m->app().epilogue.size(), 1u);
}

TEST(ModeledLuTest, TenKernelStructure) {
  auto m = lu::make_modeled_lu(ProblemClass::kW, 4, machine::ibm_sp_p2sc());
  EXPECT_EQ(loop_names(m->app()),
            (std::vector<std::string>{"Ssor_Iter", "Ssor_LT", "Ssor_UT",
                                      "Ssor_RS"}));
  EXPECT_EQ(m->app().prologue.size(), 3u);  // Init, Erhs, Ssor_Init
  EXPECT_EQ(m->app().epilogue.size(), 3u);  // Error, Pintgr, Final
}

TEST(ModeledBtTest, InvalidRankCountRejected) {
  EXPECT_THROW(
      bt::make_modeled_bt(ProblemClass::kS, 8, machine::ibm_sp_p2sc()),
      std::invalid_argument);
  EXPECT_THROW(
      lu::make_modeled_lu(ProblemClass::kW, 12, machine::ibm_sp_p2sc()),
      std::invalid_argument);
}

TEST(ModeledBtTest, StudyIsDeterministic) {
  const coupling::StudyOptions options{{2}, {}};
  auto m1 = bt::make_modeled_bt(ProblemClass::kS, 4, machine::ibm_sp_p2sc());
  auto m2 = bt::make_modeled_bt(ProblemClass::kS, 4, machine::ibm_sp_p2sc());
  const auto a = coupling::run_study(m1->app(), options);
  const auto b = coupling::run_study(m2->app(), options);
  EXPECT_EQ(a.actual_s, b.actual_s);
  EXPECT_EQ(a.summation_s, b.summation_s);
  EXPECT_EQ(a.by_length[0].prediction_s, b.by_length[0].prediction_s);
  for (std::size_t i = 0; i < a.by_length[0].chains.size(); ++i) {
    EXPECT_EQ(a.by_length[0].chains[i].coupling(),
              b.by_length[0].chains[i].coupling());
  }
}

struct HeadlineCase {
  const char* name;
  ProblemClass cls;
  int ranks;
  std::size_t q;
};

class HeadlineTest : public ::testing::TestWithParam<HeadlineCase> {};

/// The reproduction contract: for every evaluation configuration of the
/// paper's Tables 3-4/6/8 (W and A classes), the coupling predictor beats
/// the summation predictor on the modeled machine.
TEST_P(HeadlineTest, CouplingPredictorBeatsSummation) {
  const HeadlineCase& c = GetParam();
  const coupling::StudyOptions options{{c.q}, {}};
  std::unique_ptr<ModeledApp> m;
  switch (c.name[0]) {
    case 'B':
      m = bt::make_modeled_bt(c.cls, c.ranks, machine::ibm_sp_p2sc());
      break;
    case 'S':
      m = sp::make_modeled_sp(c.cls, c.ranks, machine::ibm_sp_p2sc());
      break;
    default:
      m = lu::make_modeled_lu(c.cls, c.ranks, machine::ibm_sp_p2sc());
      break;
  }
  const auto r = coupling::run_study(m->app(), options);
  EXPECT_LT(r.by_length[0].relative_error, r.summation_error)
      << c.name << " class " << to_string(c.cls) << " P=" << c.ranks;
  // The paper's coupling predictions sit in the few-percent range.
  EXPECT_LT(r.by_length[0].relative_error, 0.10);
}

INSTANTIATE_TEST_SUITE_P(
    PaperConfigurations, HeadlineTest,
    ::testing::Values(
        HeadlineCase{"BT", ProblemClass::kW, 4, 3},
        HeadlineCase{"BT", ProblemClass::kW, 9, 3},
        HeadlineCase{"BT", ProblemClass::kW, 16, 3},
        HeadlineCase{"BT", ProblemClass::kW, 25, 3},
        HeadlineCase{"BT", ProblemClass::kA, 4, 4},
        HeadlineCase{"BT", ProblemClass::kA, 9, 4},
        HeadlineCase{"BT", ProblemClass::kA, 16, 4},
        HeadlineCase{"BT", ProblemClass::kA, 25, 4},
        HeadlineCase{"SP", ProblemClass::kW, 4, 5},
        HeadlineCase{"SP", ProblemClass::kW, 16, 5},
        HeadlineCase{"SP", ProblemClass::kA, 4, 5},
        HeadlineCase{"SP", ProblemClass::kA, 25, 5},
        HeadlineCase{"SP", ProblemClass::kB, 9, 4},
        HeadlineCase{"LU", ProblemClass::kW, 4, 3},
        HeadlineCase{"LU", ProblemClass::kW, 32, 3},
        HeadlineCase{"LU", ProblemClass::kA, 8, 3},
        HeadlineCase{"LU", ProblemClass::kB, 16, 3}),
    [](const ::testing::TestParamInfo<HeadlineCase>& param) {
      return std::string(param.param.name) + to_string(param.param.cls) +
             "P" + std::to_string(param.param.ranks);
    });

TEST(ModeledBtTest, CouplingRegimesFollowTheMemoryHierarchy) {
  // Section 4.1: Class W couplings are constructive (clearly below 1 on
  // average); Class S couplings grow with the processor count.
  const coupling::StudyOptions w_opts{{3}, {}};
  auto mw = bt::make_modeled_bt(ProblemClass::kW, 4, machine::ibm_sp_p2sc());
  const auto rw = coupling::run_study(mw->app(), w_opts);
  double mean_w = 0.0;
  for (const auto& c : rw.by_length[0].chains) mean_w += c.coupling();
  mean_w /= static_cast<double>(rw.by_length[0].chains.size());
  EXPECT_LT(mean_w, 0.97);

  const coupling::StudyOptions s_opts{{2}, {}};
  auto m4 = bt::make_modeled_bt(ProblemClass::kS, 4, machine::ibm_sp_p2sc());
  auto m16 = bt::make_modeled_bt(ProblemClass::kS, 16, machine::ibm_sp_p2sc());
  const auto r4 = coupling::run_study(m4->app(), s_opts);
  const auto r16 = coupling::run_study(m16->app(), s_opts);
  double mean4 = 0.0, mean16 = 0.0;
  for (const auto& c : r4.by_length[0].chains) mean4 += c.coupling();
  for (const auto& c : r16.by_length[0].chains) mean16 += c.coupling();
  EXPECT_GT(mean16, mean4);  // destructive growth with P at Class S
  EXPECT_GT(mean16 / 5.0, 1.0);
}

}  // namespace
}  // namespace kcoup::npb
