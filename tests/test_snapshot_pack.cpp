// Tests for the packed-snapshot format (`kcoup pack` / .kcs): cross-format
// bit-identity between CSV-built and packed-loaded snapshots, pack
// determinism (golden byte pin), and format robustness — truncation at
// every offset, bit flips everywhere, and crafted-header corruption must
// all surface as named SnapshotFormatError codes, never a crash and never
// a silently wrong snapshot.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "coupling/analysis.hpp"
#include "coupling/database.hpp"
#include "serve/binfmt.hpp"
#include "serve/pack.hpp"
#include "serve/protocol.hpp"
#include "serve/query_engine.hpp"
#include "serve/snapshot.hpp"
#include "serve/workload.hpp"

namespace kcoup {
namespace {

// --- Deterministic workload (mirrors test_serve.cpp's FakeWorkload) ---------

/// 3-kernel closed-form workload: ranks 5 is "unrunnable" so the
/// scaling-model fallback path is reachable.
class PackWorkload final : public serve::Workload {
 public:
  static constexpr std::size_t kLoop = 3;

  bool valid_cell(const std::string& application, const std::string& config,
                  int ranks) const override {
    return application == "APP" && config == "X" && ranks >= 1 && ranks != 5;
  }

  serve::CellInputs measure_cell(const std::string& application,
                                 const std::string& config,
                                 int ranks) const override {
    if (!valid_cell(application, config, ranks)) {
      throw std::invalid_argument("PackWorkload: invalid cell");
    }
    serve::CellInputs cell;
    for (std::size_t k = 0; k < kLoop; ++k) {
      cell.inputs.isolated_means.push_back(mean(k, ranks));
    }
    cell.inputs.prologue_s = 0.001;
    cell.inputs.epilogue_s = 0.002;
    cell.inputs.iterations = 10;
    cell.loop_size = kLoop;
    cell.grid_extent = 12.0;
    cell.summation_s = coupling::summation_prediction(cell.inputs);
    cell.actual_s = cell.summation_s * 1.1;
    return cell;
  }

  std::optional<serve::CellShape> shape(
      const std::string& application,
      const std::string& config) const override {
    if (application != "APP" || config != "X") return std::nullopt;
    return serve::CellShape{12.0, 10};
  }

  static double mean(std::size_t k, int ranks) {
    return 0.01 * static_cast<double>(k + 1) / static_cast<double>(ranks);
  }
};

/// One complete q=2 chain group for (APP, X, ranks).
void add_group(coupling::CouplingDatabase* db, int ranks) {
  for (std::size_t start = 0; start < PackWorkload::kLoop; ++start) {
    coupling::CouplingRecord r;
    r.key = {"APP", "X", ranks, 2, start};
    r.isolated_sum =
        PackWorkload::mean(start, ranks) +
        PackWorkload::mean((start + 1) % PackWorkload::kLoop, ranks);
    r.chain_time = r.isolated_sum * (1.05 + 0.01 * static_cast<double>(start));
    db->record(r);
  }
}

/// The canonical test snapshot: four complete groups (enough samples for
/// the scaling-model fit), models fitted from the closed-form workload,
/// and a second application whose coupling series carries a level shift so
/// the transitions section pins non-trivial content.  Everything is
/// deterministic, so its packed bytes pin the format.
serve::PredictorSnapshot make_canonical_snapshot() {
  coupling::CouplingDatabase db;
  for (int p : {1, 2, 3, 4}) add_group(&db, p);
  // Partial group: records only, never an alpha group.
  coupling::CouplingRecord partial;
  partial.key = {"APP", "X", 9, 2, 0};
  partial.chain_time = 0.01;
  partial.isolated_sum = 0.01;
  db.record(partial);
  // Unmodelable app (no measurable cells) with a coupling transition
  // between P = 8 and P = 16: exercises the kTransitions section.
  for (int p : {1, 2, 4, 8}) {
    db.record({{"TRANS", "Y", p, 2, 0}, 1.02, 1.0});
  }
  for (int p : {16, 32, 64}) {
    db.record({{"TRANS", "Y", p, 2, 0}, 1.4, 1.0});
  }

  PackWorkload workload;
  return serve::PredictorSnapshot(
      std::move(db), 7,
      [&workload](const std::string& a, const std::string& c, int p)
          -> std::optional<serve::CellInputs> {
        if (!workload.valid_cell(a, c, p)) return std::nullopt;
        return workload.measure_cell(a, c, p);
      },
      {true});
}

std::shared_ptr<const serve::PredictorSnapshot> load_bytes(
    const std::string& bytes, std::uint64_t version = 7) {
  return serve::load_packed_snapshot_bytes(bytes.data(), bytes.size(),
                                           version, "test");
}

/// Recompute the section-table and header checksums after a crafted edit,
/// so the loader reaches the check the test aims at instead of stopping on
/// "header checksum mismatch".
void resign(std::string* buf) {
  std::uint32_t section_count = 0;
  std::memcpy(&section_count, buf->data() + 24, sizeof section_count);
  const std::size_t table_bytes =
      static_cast<std::size_t>(section_count) * serve::binfmt::kSectionEntryBytes;
  if (buf->size() >= serve::binfmt::kHeaderBytes + table_bytes) {
    serve::binfmt::poke_u64(
        buf, 32,
        serve::binfmt::fnv1a64(buf->data() + serve::binfmt::kHeaderBytes,
                               table_bytes));
  }
  serve::binfmt::poke_u64(
      buf, serve::binfmt::kHeaderChecksumOffset,
      serve::binfmt::fnv1a64(buf->data(), serve::binfmt::kHeaderChecksumOffset));
}

/// Expect load_packed_snapshot_bytes to throw the given code.
void expect_code(const std::string& bytes, const std::string& code) {
  try {
    (void)load_bytes(bytes);
    FAIL() << "expected SnapshotFormatError(" << code << ")";
  } catch (const serve::binfmt::SnapshotFormatError& e) {
    EXPECT_EQ(e.code(), code) << e.what();
  }
}

void expect_records_equal(const coupling::CouplingDatabase& a,
                          const coupling::CouplingDatabase& b) {
  ASSERT_EQ(a.records().size(), b.records().size());
  for (std::size_t i = 0; i < a.records().size(); ++i) {
    const coupling::CouplingRecord& ra = a.records()[i];
    const coupling::CouplingRecord& rb = b.records()[i];
    EXPECT_EQ(ra.key, rb.key);
    EXPECT_EQ(ra.chain_time, rb.chain_time);        // bitwise: operator== on
    EXPECT_EQ(ra.isolated_sum, rb.isolated_sum);    // identical finite values
  }
}

void expect_groups_equal(const serve::PredictorSnapshot& a,
                         const serve::PredictorSnapshot& b) {
  ASSERT_EQ(a.alpha_groups().size(), b.alpha_groups().size());
  for (std::size_t i = 0; i < a.alpha_groups().size(); ++i) {
    const auto& [ka, ga] = a.alpha_groups()[i];
    const auto& [kb, gb] = b.alpha_groups()[i];
    EXPECT_EQ(ka, kb);
    EXPECT_EQ(ga.loop_size, gb.loop_size);
    ASSERT_EQ(ga.alpha.size(), gb.alpha.size());
    for (std::size_t k = 0; k < ga.alpha.size(); ++k) {
      EXPECT_EQ(ga.alpha[k], gb.alpha[k]);
    }
    ASSERT_EQ(ga.chains.size(), gb.chains.size());
    for (std::size_t c = 0; c < ga.chains.size(); ++c) {
      EXPECT_EQ(ga.chains[c].start, gb.chains[c].start);
      EXPECT_EQ(ga.chains[c].length, gb.chains[c].length);
      EXPECT_EQ(ga.chains[c].members, gb.chains[c].members);
      EXPECT_EQ(ga.chains[c].label, gb.chains[c].label);
      EXPECT_EQ(ga.chains[c].chain_time, gb.chains[c].chain_time);
      EXPECT_EQ(ga.chains[c].isolated_sum, gb.chains[c].isolated_sum);
    }
  }
}

void expect_models_equal(const serve::PredictorSnapshot& a,
                         const serve::PredictorSnapshot& b) {
  ASSERT_EQ(a.scaling_models().size(), b.scaling_models().size());
  for (std::size_t i = 0; i < a.scaling_models().size(); ++i) {
    const auto& [na, ma] = a.scaling_models()[i];
    const auto& [nb, mb] = b.scaling_models()[i];
    EXPECT_EQ(na, nb);
    ASSERT_EQ(ma.size(), mb.size());
    for (std::size_t k = 0; k < ma.size(); ++k) {
      EXPECT_EQ(ma[k].coefficients(), mb[k].coefficients());
      EXPECT_EQ(ma[k].fit_rms_relative_error(), mb[k].fit_rms_relative_error());
    }
  }
}

void expect_fitted_equal(const serve::PredictorSnapshot& a,
                         const serve::PredictorSnapshot& b) {
  ASSERT_EQ(a.fitted_models().size(), b.fitted_models().size());
  for (std::size_t i = 0; i < a.fitted_models().size(); ++i) {
    const auto& [na, fa] = a.fitted_models()[i];
    const auto& [nb, fb] = b.fitted_models()[i];
    EXPECT_EQ(na, nb);
    ASSERT_EQ(fa.size(), fb.size());
    for (std::size_t k = 0; k < fa.size(); ++k) {
      EXPECT_EQ(fa[k].breakpoints, fb[k].breakpoints);
      ASSERT_EQ(fa[k].segments.size(), fb[k].segments.size());
      for (std::size_t s = 0; s < fa[k].segments.size(); ++s) {
        const model::ModelSegment& sa = fa[k].segments[s];
        const model::ModelSegment& sb = fb[k].segments[s];
        EXPECT_EQ(sa.p_min, sb.p_min);
        EXPECT_EQ(sa.p_max, sb.p_max);
        EXPECT_EQ(sa.sample_count, sb.sample_count);
        EXPECT_EQ(sa.model.degenerate, sb.model.degenerate);
        // NaN cv_rmse (degenerate models) must round-trip bit-identically.
        EXPECT_EQ(std::memcmp(&sa.model.cv_rmse, &sb.model.cv_rmse, 8), 0);
        EXPECT_EQ(std::memcmp(&sa.model.fit_rmse, &sb.model.fit_rmse, 8), 0);
        ASSERT_EQ(sa.model.terms.size(), sb.model.terms.size());
        for (std::size_t t = 0; t < sa.model.terms.size(); ++t) {
          EXPECT_EQ(sa.model.terms[t].id, sb.model.terms[t].id);
          EXPECT_EQ(sa.model.terms[t].coefficient,
                    sb.model.terms[t].coefficient);
        }
      }
    }
  }
}

void expect_transitions_equal(const serve::PredictorSnapshot& a,
                              const serve::PredictorSnapshot& b) {
  ASSERT_EQ(a.transitions().size(), b.transitions().size());
  for (std::size_t i = 0; i < a.transitions().size(); ++i) {
    const model::CouplingTransition& ta = a.transitions()[i];
    const model::CouplingTransition& tb = b.transitions()[i];
    EXPECT_EQ(ta.application, tb.application);
    EXPECT_EQ(ta.config, tb.config);
    EXPECT_EQ(ta.chain_length, tb.chain_length);
    EXPECT_EQ(ta.chain_start, tb.chain_start);
    EXPECT_EQ(ta.ranks_lo, tb.ranks_lo);
    EXPECT_EQ(ta.ranks_hi, tb.ranks_hi);
    EXPECT_EQ(ta.boundary, tb.boundary);
    EXPECT_EQ(ta.coupling_before, tb.coupling_before);
    EXPECT_EQ(ta.coupling_after, tb.coupling_after);
  }
}

// --- Round trip -------------------------------------------------------------

TEST(SnapshotPack, RoundTripIsBitIdentical) {
  const serve::PredictorSnapshot original = make_canonical_snapshot();
  const std::string bytes = serve::pack_snapshot(original);
  EXPECT_TRUE(serve::is_packed_snapshot(bytes));

  const auto loaded = load_bytes(bytes);
  EXPECT_EQ(loaded->version(), 7u);
  expect_records_equal(original.database(), loaded->database());
  expect_groups_equal(original, *loaded);
  expect_models_equal(original, *loaded);
  expect_fitted_equal(original, *loaded);
  expect_transitions_equal(original, *loaded);
}

TEST(SnapshotPack, CanonicalSnapshotCarriesFittedModelsAndTransitions) {
  const serve::PredictorSnapshot snapshot = make_canonical_snapshot();
  // APP gets piecewise models alongside the legacy LSQ ones.
  EXPECT_EQ(snapshot.fitted_application_count(), 1u);
  const auto* fitted = snapshot.fitted_models_for("APP");
  ASSERT_NE(fitted, nullptr);
  EXPECT_EQ(fitted->size(), PackWorkload::kLoop);
  // The closed-form workload is exactly c/P, so every kernel selects 1/P
  // with no split.
  for (const model::PiecewiseModel& pw : *fitted) {
    EXPECT_TRUE(pw.breakpoints.empty());
    ASSERT_EQ(pw.segments.size(), 1u);
    EXPECT_FALSE(pw.segments[0].model.degenerate);
    EXPECT_EQ(pw.segments[0].model.term_names(), "1/P");
  }
  // TRANS's level shift between P = 8 and P = 16 is detected and stored.
  ASSERT_EQ(snapshot.transition_count(), 1u);
  const model::CouplingTransition& t = snapshot.transitions()[0];
  EXPECT_EQ(t.application, "TRANS");
  EXPECT_EQ(t.config, "Y");
  EXPECT_EQ(t.ranks_lo, 8);
  EXPECT_EQ(t.ranks_hi, 16);
  EXPECT_DOUBLE_EQ(t.boundary, 12.0);
}

TEST(SnapshotPack, PackIsDeterministicAndRepackStable) {
  const serve::PredictorSnapshot snapshot = make_canonical_snapshot();
  const std::string once = serve::pack_snapshot(snapshot);
  const std::string twice = serve::pack_snapshot(snapshot);
  EXPECT_EQ(once, twice);
  // pack(load(pack(x))) == pack(x): the loaded snapshot carries exactly the
  // packed tables, so re-packing reproduces the file byte for byte.
  const auto loaded = load_bytes(once);
  EXPECT_EQ(serve::pack_snapshot(*loaded), once);
}

TEST(SnapshotPack, RandomizedDatabasesSurviveRoundTrip) {
  const char* apps[] = {"APP", "BT", "LU", "SP", "ZZ"};
  const char* configs[] = {"S", "W", "A", "X"};
  for (std::uint32_t seed = 0; seed < 12; ++seed) {
    std::mt19937 rng(seed);
    coupling::CouplingDatabase db;
    const int groups = 1 + static_cast<int>(rng() % 8);
    for (int g = 0; g < groups; ++g) {
      const std::string app = apps[rng() % std::size(apps)];
      const std::string config = configs[rng() % std::size(configs)];
      const int ranks = 1 << (rng() % 6);
      const std::size_t loop = 2 + rng() % 5;
      const std::size_t q = 1 + rng() % loop;
      const bool partial = rng() % 4 == 0;
      for (std::size_t start = 0; start < loop; ++start) {
        if (partial && start == loop - 1) continue;  // hole: reuse path
        coupling::CouplingRecord r;
        r.key = {app, config, ranks, q, start};
        std::uniform_real_distribution<double> dist(1e-6, 1.0);
        r.isolated_sum = dist(rng);
        r.chain_time = r.isolated_sum * (0.5 + dist(rng));
        db.record(std::move(r));
      }
    }
    const serve::PredictorSnapshot original(std::move(db), seed, {}, {false});
    const std::string bytes = serve::pack_snapshot(original);
    const auto loaded = load_bytes(bytes, seed);
    expect_records_equal(original.database(), loaded->database());
    expect_groups_equal(original, *loaded);
    EXPECT_EQ(serve::pack_snapshot(*loaded), bytes) << "seed " << seed;
  }
}

// --- Cross-format prediction bit-identity -----------------------------------

/// Every fallback path — exact alpha, nearest-ranks donor, scaling-model,
/// and the error path — must serialize to byte-identical JSON whether the
/// snapshot came from the CSV build or the packed loader, with the memo
/// cache on or off.
TEST(SnapshotPack, PredictionsBitIdenticalAcrossFormats) {
  const serve::PredictorSnapshot csv_built = make_canonical_snapshot();
  const std::string bytes = serve::pack_snapshot(csv_built);
  const auto packed = load_bytes(bytes);

  const std::vector<serve::QueryKey> matrix = {
      {"APP", "X", 4, 2},   // exact precomputed group
      {"APP", "X", 6, 2},   // nearest-ranks donor
      {"APP", "X", 9, 2},   // partial group: donor path again
      {"APP", "X", 5, 2},   // unrunnable: scaling-model fallback
      {"APP", "X", 4, 9},   // no such chain length: donor with q fallback
      {"NOPE", "X", 4, 2},  // unknown application: error path
  };

  PackWorkload workload;
  for (const std::size_t capacity : {std::size_t{0}, std::size_t{1024}}) {
    serve::EngineOptions options;
    options.cache_capacity = capacity;
    serve::QueryEngine csv_engine(&workload, options);
    serve::QueryEngine kcs_engine(&workload, options);
    for (const serve::QueryKey& q : matrix) {
      const std::string a =
          serve::prediction_json(csv_engine.predict(csv_built, q));
      const std::string b =
          serve::prediction_json(kcs_engine.predict(*packed, q));
      EXPECT_EQ(a, b) << q.application << " P=" << q.ranks << " q="
                      << q.chain_length << " cache=" << capacity;
    }
  }
}

/// The thread-local request scratch must not leak state between queries:
/// alternating measured / donor / model / error paths for many rounds has
/// to keep returning the first round's exact bytes.
TEST(SnapshotPack, MixedQuerySequenceIsStable) {
  const serve::PredictorSnapshot snapshot = make_canonical_snapshot();
  const std::vector<serve::QueryKey> matrix = {
      {"APP", "X", 4, 2},  {"APP", "X", 5, 2},  {"APP", "X", 6, 2},
      {"NOPE", "X", 4, 2}, {"APP", "X", 4, 9},
  };
  PackWorkload workload;
  serve::QueryEngine engine(&workload);
  // Warm the memo first: the reference round must not mix first-touch
  // "cache":"miss" responses with the steady-state "hit" ones.
  for (const serve::QueryKey& q : matrix) (void)engine.predict(snapshot, q);
  std::vector<std::string> first;
  for (const serve::QueryKey& q : matrix) {
    first.push_back(serve::prediction_json(engine.predict(snapshot, q)));
  }
  for (int round = 0; round < 16; ++round) {
    for (std::size_t i = 0; i < matrix.size(); ++i) {
      EXPECT_EQ(serve::prediction_json(engine.predict(snapshot, matrix[i])),
                first[i])
          << "round " << round << " query " << i;
    }
  }
}

/// Concurrent predicts over one packed-loaded snapshot: exercises the
/// thread-local scratch and the sharded memo under tsan.
TEST(SnapshotPack, ConcurrentPredictsOnPackedSnapshot) {
  const std::string bytes = serve::pack_snapshot(make_canonical_snapshot());
  const auto snapshot = load_bytes(bytes);
  PackWorkload workload;
  serve::QueryEngine engine(&workload);

  const std::vector<serve::QueryKey> matrix = {
      {"APP", "X", 4, 2}, {"APP", "X", 5, 2}, {"APP", "X", 6, 2},
  };
  // Warm the memo so every threaded response is a steady-state cache hit.
  for (const serve::QueryKey& q : matrix) (void)engine.predict(*snapshot, q);
  std::vector<std::string> want;
  want.reserve(matrix.size());
  for (const serve::QueryKey& q : matrix) {
    want.push_back(serve::prediction_json(engine.predict(*snapshot, q)));
  }

  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        const std::size_t j = static_cast<std::size_t>(i) % matrix.size();
        if (serve::prediction_json(engine.predict(*snapshot, matrix[j])) !=
            want[j]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// --- File round trip + SnapshotSource sniffing ------------------------------

class SnapshotPackFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("kcoup_pack_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(SnapshotPackFileTest, PackVerifyLoadRoundTrip) {
  const serve::PredictorSnapshot snapshot = make_canonical_snapshot();
  const std::string path = (dir_ / "db.kcs").string();
  const serve::PackStats packed = serve::pack_snapshot_file(snapshot, path);
  EXPECT_EQ(packed.records, snapshot.database().size());
  EXPECT_EQ(packed.alpha_groups, snapshot.alpha_group_count());
  EXPECT_EQ(packed.modeled_applications,
            snapshot.modeled_application_count());
  EXPECT_EQ(packed.fitted_applications, snapshot.fitted_application_count());
  EXPECT_EQ(packed.transitions, snapshot.transition_count());
  EXPECT_TRUE(serve::is_packed_snapshot_file(path));

  const serve::PackStats verified = serve::verify_packed_snapshot(path);
  EXPECT_EQ(verified.records, packed.records);
  EXPECT_EQ(verified.bytes, packed.bytes);
  EXPECT_EQ(verified.fitted_applications, packed.fitted_applications);
  EXPECT_EQ(verified.transitions, packed.transitions);

  const auto loaded = serve::load_packed_snapshot(path, 3);
  EXPECT_EQ(loaded->version(), 3u);
  expect_groups_equal(snapshot, *loaded);
  expect_models_equal(snapshot, *loaded);
  expect_fitted_equal(snapshot, *loaded);
  expect_transitions_equal(snapshot, *loaded);
}

TEST_F(SnapshotPackFileTest, SnapshotSourceSniffsPackedFormat) {
  const std::string path = (dir_ / "db.kcs").string();
  serve::pack_snapshot_file(make_canonical_snapshot(), path);
  serve::SnapshotSource source(path, {}, {false});
  source.load();
  const auto snapshot = source.current();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->alpha_group_count(), 4u);
  EXPECT_EQ(snapshot->modeled_application_count(), 1u);
}

TEST_F(SnapshotPackFileTest, MissingAndNonPackedFilesAreNotPacked) {
  EXPECT_FALSE(serve::is_packed_snapshot_file((dir_ / "absent.kcs").string()));
  const std::string csv = (dir_ / "db.csv").string();
  std::ofstream(csv) << "application,config\n";
  EXPECT_FALSE(serve::is_packed_snapshot_file(csv));
  EXPECT_THROW((void)serve::load_packed_snapshot(csv, 1),
               serve::binfmt::SnapshotFormatError);
}

TEST_F(SnapshotPackFileTest, EmptyFileIsTruncatedHeader) {
  const std::string path = (dir_ / "empty.kcs").string();
  std::ofstream(path).close();
  try {
    (void)serve::load_packed_snapshot(path, 1);
    FAIL() << "expected SnapshotFormatError";
  } catch (const serve::binfmt::SnapshotFormatError& e) {
    EXPECT_EQ(e.code(), "truncated header");
  }
}

// --- Golden-format pin ------------------------------------------------------

/// The canonical snapshot's packed bytes are checked into
/// tests/data/golden.kcs.  Any change to the writer that alters the byte
/// layout must bump kFormatVersion and regenerate the golden
/// (KCOUP_REGEN_GOLDEN=1) — this test is the tripwire.
TEST(SnapshotPack, GoldenFileStaysByteIdentical) {
  const std::string golden_path = std::string(KCOUP_TEST_DATA_DIR) +
                                  "/golden.kcs";
  const std::string bytes = serve::pack_snapshot(make_canonical_snapshot());

  if (std::getenv("KCOUP_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << "failed to write " << golden_path;
    GTEST_SKIP() << "regenerated " << golden_path;
  }

  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in.good()) << golden_path
                         << " missing; run with KCOUP_REGEN_GOLDEN=1";
  std::ostringstream got;
  got << in.rdbuf();
  const std::string golden = got.str();
  ASSERT_EQ(golden.size(), bytes.size())
      << "packed size drifted from the golden pin";
  EXPECT_TRUE(golden == bytes)
      << "packed bytes drifted from tests/data/golden.kcs — if the format "
         "change is intentional, bump binfmt::kFormatVersion and regenerate "
         "with KCOUP_REGEN_GOLDEN=1";
  // And the pinned file still loads and matches the canonical snapshot.
  const auto loaded = load_bytes(golden);
  expect_groups_equal(make_canonical_snapshot(), *loaded);
}

// --- Format fuzzing ---------------------------------------------------------

class SnapshotFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override { bytes_ = serve::pack_snapshot(make_canonical_snapshot()); }

  std::string bytes_;
};

TEST_F(SnapshotFuzzTest, TruncationAtEveryOffsetIsANamedError) {
  for (std::size_t len = 0; len < bytes_.size(); ++len) {
    try {
      (void)serve::load_packed_snapshot_bytes(bytes_.data(), len, 1, "trunc");
      FAIL() << "truncation to " << len << " bytes loaded successfully";
    } catch (const serve::binfmt::SnapshotFormatError& e) {
      EXPECT_FALSE(e.code().empty()) << "len " << len;
    }
    // Any other exception type escapes and fails the test.
  }
}

TEST_F(SnapshotFuzzTest, EveryHeaderAndTableBitFlipIsDetected) {
  std::uint32_t section_count = 0;
  std::memcpy(&section_count, bytes_.data() + 24, sizeof section_count);
  const std::size_t guarded =
      serve::binfmt::kHeaderBytes +
      static_cast<std::size_t>(section_count) *
          serve::binfmt::kSectionEntryBytes;
  ASSERT_LE(guarded, bytes_.size());
  for (std::size_t byte = 0; byte < guarded; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = bytes_;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      try {
        (void)load_bytes(mutated);
        FAIL() << "flip at byte " << byte << " bit " << bit << " loaded";
      } catch (const serve::binfmt::SnapshotFormatError& e) {
        EXPECT_FALSE(e.code().empty());
      }
    }
  }
}

TEST_F(SnapshotFuzzTest, PayloadBitFlipsAreDetected) {
  // One flip per payload byte (rotating bit position) keeps the sweep
  // linear while still touching every byte of every section.
  for (std::size_t byte = serve::binfmt::kHeaderBytes; byte < bytes_.size();
       ++byte) {
    std::string mutated = bytes_;
    mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << (byte % 8)));
    try {
      (void)load_bytes(mutated);
      FAIL() << "payload flip at byte " << byte << " loaded";
    } catch (const serve::binfmt::SnapshotFormatError& e) {
      EXPECT_FALSE(e.code().empty());
    }
  }
}

TEST_F(SnapshotFuzzTest, CraftedHeadersReportTheExactCode) {
  {
    std::string m = bytes_;
    m[0] = 'X';
    expect_code(m, "bad magic");  // checked before any checksum
  }
  {
    std::string m = bytes_;
    m[12] = static_cast<char>(m[12] ^ 0xFF);  // endianness tag
    expect_code(m, "endianness mismatch");
  }
  {
    std::string m = bytes_;
    const std::uint32_t v = serve::binfmt::kFormatVersion + 1;
    std::memcpy(m.data() + 8, &v, sizeof v);
    expect_code(m, "unsupported version");
  }
  {
    std::string m = bytes_;
    serve::binfmt::poke_u64(&m, serve::binfmt::kHeaderChecksumOffset, 0);
    expect_code(m, "header checksum mismatch");
  }
  {
    std::string m = bytes_;
    const std::uint64_t wrong = m.size() + 1;
    std::memcpy(m.data() + 16, &wrong, sizeof wrong);
    resign(&m);
    expect_code(m, "size mismatch");
  }
  {
    std::string m = bytes_;
    const std::uint32_t wrong = 32;
    std::memcpy(m.data() + 28, &wrong, sizeof wrong);
    resign(&m);
    expect_code(m, "bad header size");
  }
  {
    std::string m = bytes_;
    m[44] = 1;  // reserved region [40, 56)
    resign(&m);
    expect_code(m, "nonzero reserved bytes");
  }
  {
    std::string m = bytes_;
    const std::uint32_t huge = serve::binfmt::kMaxSections + 1;
    std::memcpy(m.data() + 24, &huge, sizeof huge);
    // Only the header can be re-signed: the claimed table exceeds the file.
    serve::binfmt::poke_u64(
        &m, serve::binfmt::kHeaderChecksumOffset,
        serve::binfmt::fnv1a64(m.data(),
                               serve::binfmt::kHeaderChecksumOffset));
    expect_code(m, "oversized section table");
  }
  {
    std::string m = bytes_;
    const std::uint32_t kind = 99;  // first section entry's kind field
    std::memcpy(m.data() + serve::binfmt::kHeaderBytes, &kind, sizeof kind);
    resign(&m);
    expect_code(m, "unexpected section kind");
  }
  {
    std::string m = bytes_;
    const std::uint32_t flags = 1;  // first entry's flags field
    std::memcpy(m.data() + serve::binfmt::kHeaderBytes + 4, &flags,
                sizeof flags);
    resign(&m);
    expect_code(m, "bad section flags");
  }
  {
    std::string m = bytes_ + std::string(8, '\0');  // trailing garbage
    expect_code(m, "size mismatch");
  }
}

TEST_F(SnapshotFuzzTest, CorruptCountFieldFailsBeforeAllocating) {
  // The records section begins with its u64 count; a hostile count must be
  // rejected by the bounds check, not by attempting a huge reserve.
  std::uint64_t records_off = 0;
  std::uint32_t kind = 0;
  for (std::uint32_t i = 0; i < serve::binfmt::kSectionCount; ++i) {
    const std::size_t entry =
        serve::binfmt::kHeaderBytes + i * serve::binfmt::kSectionEntryBytes;
    std::memcpy(&kind, bytes_.data() + entry, sizeof kind);
    if (kind == 2) {
      std::memcpy(&records_off, bytes_.data() + entry + 8, sizeof records_off);
      break;
    }
  }
  ASSERT_EQ(kind, 2u);
  std::string m = bytes_;
  const std::uint64_t huge = 1ull << 60;
  std::memcpy(m.data() + records_off, &huge, sizeof huge);
  // Re-sign the records section checksum, the table, then the header, so
  // the decode actually reaches the count check.
  for (std::uint32_t i = 0; i < serve::binfmt::kSectionCount; ++i) {
    const std::size_t entry =
        serve::binfmt::kHeaderBytes + i * serve::binfmt::kSectionEntryBytes;
    std::memcpy(&kind, m.data() + entry, sizeof kind);
    if (kind != 2) continue;
    std::uint64_t off = 0;
    std::uint64_t size = 0;
    std::memcpy(&off, m.data() + entry + 8, sizeof off);
    std::memcpy(&size, m.data() + entry + 16, sizeof size);
    serve::binfmt::poke_u64(&m, entry + 24,
                            serve::binfmt::fnv1a64(m.data() + off, size));
  }
  resign(&m);
  expect_code(m, "count out of range");
}

}  // namespace
}  // namespace kcoup
